//! A reference interpreter for *un-lowered* Calyx programs.
//!
//! Executes the control tree directly, the way the language definition
//! reads (paper §3.3–§3.4): an `enable` activates a group's assignments
//! until the group signals `done`; `seq` runs children in order; `par`
//! runs them concurrently; `if`/`while` evaluate their `with` group, sample
//! the condition port, and proceed. Combinational settling within a cycle
//! uses fixpoint iteration over the active assignments.
//!
//! Since the flat-IR rewrite the interpreter runs over the dense arenas of
//! [`crate::flatten`]: port valuations are a `Vec<u64>` indexed by
//! [`PortIdx`] (no `HashMap` re-hashing per read), the active assignment
//! set is a handful of contiguous ranges, and the control tree advances by
//! updating small per-node state arrays instead of cloning `Control`
//! subtrees. The observable semantics — cycle counts, final state, error
//! cases — are identical to the pre-flatten engine, which survives as
//! [`crate::legacy::interp`] and is held to byte-identical output by the
//! differential tests.
//!
//! This is the semantic oracle for the compiler: after lowering, the RTL
//! simulation must leave the same architectural state (registers and
//! memories) as this interpreter, even though cycle counts differ. The
//! differential tests in `tests/` rely on exactly that.
//!
//! Limitations (by design — the RTL engine covers the rest): programs must
//! be single-component (no component-typed cells).

use crate::error::{SimError, SimResult};
use crate::flatten::{
    eval_atom, eval_guard, flatten_control, AssignIdx, CtrlIdx, CtrlNode, FlatCellKind,
    FlatControl, FlatIdx, GroupIdx, IndexedMap, PortIdx,
};
use crate::prim::PrimState;
use calyx_core::ir::{Context, Id};

/// Per-node runtime state of the flattened control tree. Indexed by
/// [`CtrlIdx`]; each field is meaningful only for the node kinds that use
/// it (sequence position for `seq`, condition phase and branch choice for
/// `if`/`while`, completion flags for `par` children).
struct CtrlRuntime {
    seq_pos: Vec<u32>,
    in_cond: Vec<bool>,
    taken: Vec<bool>,
    finished: Vec<bool>,
}

impl CtrlRuntime {
    fn new(n: usize) -> Self {
        CtrlRuntime {
            seq_pos: vec![0; n],
            in_cond: vec![false; n],
            taken: vec![false; n],
            finished: vec![false; n],
        }
    }
}

/// (Re-)enter a node. Returns true when the node is immediately done —
/// the flat equivalent of the tree interpreter's `init` producing `Done`.
fn ctrl_start(ctrl: &IndexedMap<CtrlIdx, CtrlNode>, rt: &mut CtrlRuntime, n: CtrlIdx) -> bool {
    match &ctrl[n] {
        CtrlNode::Empty => true,
        CtrlNode::Enable { .. } => false,
        CtrlNode::Seq { children } => {
            for (i, &c) in children.iter().enumerate() {
                if !ctrl_start(ctrl, rt, c) {
                    rt.seq_pos[n.index()] = i as u32;
                    return false;
                }
            }
            true
        }
        CtrlNode::Par { children } => {
            let mut all = true;
            for &c in children {
                let done = ctrl_start(ctrl, rt, c);
                rt.finished[c.index()] = done;
                all &= done;
            }
            all
        }
        CtrlNode::If { .. } | CtrlNode::While { .. } => {
            rt.in_cond[n.index()] = true;
            false
        }
    }
}

/// Groups active during the cycle for this node, split into ordinary
/// enables and `with` condition groups.
fn ctrl_collect(
    ctrl: &IndexedMap<CtrlIdx, CtrlNode>,
    rt: &CtrlRuntime,
    n: CtrlIdx,
    enables: &mut Vec<GroupIdx>,
    conds: &mut Vec<GroupIdx>,
) {
    match &ctrl[n] {
        CtrlNode::Empty => {}
        CtrlNode::Enable { group } => enables.push(*group),
        CtrlNode::Seq { children } => {
            ctrl_collect(
                ctrl,
                rt,
                children[rt.seq_pos[n.index()] as usize],
                enables,
                conds,
            );
        }
        CtrlNode::Par { children } => {
            for &c in children {
                if !rt.finished[c.index()] {
                    ctrl_collect(ctrl, rt, c, enables, conds);
                }
            }
        }
        CtrlNode::If {
            cond,
            tbranch,
            fbranch,
            ..
        } => {
            if rt.in_cond[n.index()] {
                if let Some(c) = cond {
                    conds.push(*c);
                }
            } else {
                let branch = if rt.taken[n.index()] {
                    *tbranch
                } else {
                    *fbranch
                };
                ctrl_collect(ctrl, rt, branch, enables, conds);
            }
        }
        CtrlNode::While { cond, body, .. } => {
            if rt.in_cond[n.index()] {
                if let Some(c) = cond {
                    conds.push(*c);
                }
            } else {
                ctrl_collect(ctrl, rt, *body, enables, conds);
            }
        }
    }
}

/// Advance a node by one cycle given this cycle's observations. Returns
/// true when the node finished.
fn ctrl_advance(
    ctrl: &IndexedMap<CtrlIdx, CtrlNode>,
    rt: &mut CtrlRuntime,
    n: CtrlIdx,
    done_groups: &[bool],
    values: &[u64],
) -> bool {
    match &ctrl[n] {
        CtrlNode::Empty => true,
        CtrlNode::Enable { group } => done_groups[group.index()],
        CtrlNode::Seq { children } => {
            let pos = rt.seq_pos[n.index()] as usize;
            if !ctrl_advance(ctrl, rt, children[pos], done_groups, values) {
                return false;
            }
            for (i, &c) in children.iter().enumerate().skip(pos + 1) {
                if !ctrl_start(ctrl, rt, c) {
                    rt.seq_pos[n.index()] = i as u32;
                    return false;
                }
            }
            true
        }
        CtrlNode::Par { children } => {
            let mut all = true;
            for &c in children {
                if rt.finished[c.index()] {
                    continue;
                }
                if ctrl_advance(ctrl, rt, c, done_groups, values) {
                    rt.finished[c.index()] = true;
                } else {
                    all = false;
                }
            }
            all
        }
        CtrlNode::If {
            port,
            cond,
            tbranch,
            fbranch,
        } => {
            if rt.in_cond[n.index()] {
                let cond_finished = match cond {
                    Some(c) => done_groups[c.index()],
                    None => true,
                };
                if !cond_finished {
                    return false;
                }
                let taken = values[port.index()] != 0;
                rt.taken[n.index()] = taken;
                let branch = if taken { *tbranch } else { *fbranch };
                if ctrl_start(ctrl, rt, branch) {
                    true
                } else {
                    rt.in_cond[n.index()] = false;
                    false
                }
            } else {
                let branch = if rt.taken[n.index()] {
                    *tbranch
                } else {
                    *fbranch
                };
                ctrl_advance(ctrl, rt, branch, done_groups, values)
            }
        }
        CtrlNode::While { port, cond, body } => {
            if rt.in_cond[n.index()] {
                let cond_finished = match cond {
                    Some(c) => done_groups[c.index()],
                    None => true,
                };
                if !cond_finished {
                    return false;
                }
                if values[port.index()] != 0 {
                    // Empty body: immediately re-evaluate next cycle.
                    if !ctrl_start(ctrl, rt, *body) {
                        rt.in_cond[n.index()] = false;
                    }
                    false
                } else {
                    true
                }
            } else if ctrl_advance(ctrl, rt, *body, done_groups, values) {
                rt.in_cond[n.index()] = true;
                false
            } else {
                false
            }
        }
    }
}

/// The interpreter for one component.
pub struct Interpreter {
    flat: FlatControl,
    rt: CtrlRuntime,
    root_done: bool,
    cycles: u64,
    /// Dense port valuation, reused across cycles.
    values: Vec<u64>,
    /// Per-pass unique-driver tracking: the value driven onto each port
    /// this pass, valid when the epoch matches.
    driven_val: Vec<u64>,
    driven_epoch: Vec<u64>,
    epoch: u64,
    /// Ports driven in the current pass.
    touched: Vec<PortIdx>,
    /// Scratch: the flattened active-assignment list for one settle.
    asgn_scratch: Vec<AssignIdx>,
    enables: Vec<GroupIdx>,
    conds: Vec<GroupIdx>,
    active: Vec<GroupIdx>,
    done_flags: Vec<bool>,
}

impl Interpreter {
    /// Build an interpreter for component `top` of `ctx`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Elaboration`] when the component instantiates
    /// other components or uses unmodeled primitives.
    pub fn new(ctx: &Context, top: &str) -> SimResult<Self> {
        let flat = flatten_control(ctx, top)?;
        let n_ports = flat.prog.ports.len();
        let n_groups = flat.groups.len();
        let mut rt = CtrlRuntime::new(flat.ctrl.len());
        let root_done = ctrl_start(&flat.ctrl, &mut rt, flat.root);
        Ok(Interpreter {
            rt,
            root_done,
            cycles: 0,
            values: vec![0; n_ports],
            driven_val: vec![0; n_ports],
            driven_epoch: vec![0; n_ports],
            epoch: 0,
            touched: Vec::new(),
            asgn_scratch: Vec::new(),
            enables: Vec::new(),
            conds: Vec::new(),
            active: Vec::new(),
            done_flags: vec![false; n_groups],
            flat,
        })
    }

    fn cell(&self, cell: &str) -> SimResult<crate::flatten::CellIdx> {
        self.flat
            .cell_index
            .get(&Id::new(cell))
            .copied()
            .ok_or_else(|| SimError::UnknownCell(cell.to_string()))
    }

    /// Initialize a memory's contents.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCell`] when `cell` is not a memory.
    pub fn set_memory(&mut self, cell: &str, data: &[u64]) -> SimResult<()> {
        let ci = self.cell(cell)?;
        match &mut self.flat.prog.states[ci] {
            PrimState::Mem {
                data: storage,
                width,
                ..
            } => {
                for (slot, v) in storage.iter_mut().zip(data) {
                    *slot = crate::prim::mask(*v, *width);
                }
                Ok(())
            }
            _ => Err(SimError::UnknownCell(cell.to_string())),
        }
    }

    /// Read a memory's contents.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCell`] when `cell` is not a memory.
    pub fn memory(&self, cell: &str) -> SimResult<Vec<u64>> {
        let ci = self.cell(cell)?;
        match &self.flat.prog.states[ci] {
            PrimState::Mem { data, .. } => Ok(data.clone()),
            _ => Err(SimError::UnknownCell(cell.to_string())),
        }
    }

    /// Read a register.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCell`] when `cell` is not a register.
    pub fn register_value(&self, cell: &str) -> SimResult<u64> {
        let ci = self.cell(cell)?;
        match (&self.flat.prog.cells[ci].kind, &self.flat.prog.states[ci]) {
            // Combinational cells carry a placeholder state; only true
            // `std_reg` instances report a value.
            (FlatCellKind::Reg { .. }, PrimState::Reg { val, .. }) => Ok(*val),
            _ => Err(SimError::UnknownCell(cell.to_string())),
        }
    }

    /// Run the control program to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] past the cycle budget, driver-conflict
    /// and convergence errors from settling.
    pub fn run(&mut self, max_cycles: u64) -> SimResult<crate::rtl::RunStats> {
        while !self.root_done {
            if self.cycles >= max_cycles {
                return Err(SimError::Timeout { max_cycles });
            }
            self.step()?;
        }
        Ok(crate::rtl::RunStats {
            cycles: self.cycles,
        })
    }

    /// Execute one cycle: settle, advance the control tree, tick state.
    fn step(&mut self) -> SimResult<()> {
        // 1. Active groups this cycle: enabled groups plus the `with`
        //    condition groups currently being evaluated.
        let mut enables = std::mem::take(&mut self.enables);
        let mut conds = std::mem::take(&mut self.conds);
        enables.clear();
        conds.clear();
        ctrl_collect(
            &self.flat.ctrl,
            &self.rt,
            self.flat.root,
            &mut enables,
            &mut conds,
        );

        // 2. An enabled group whose done signal is already observable from
        //    state alone (a registered done from last cycle's write) must
        //    not execute again during its done-observation cycle — this
        //    mirrors the `!done` protection in the compiled FSMs. Condition
        //    groups are exempt: they are combinational and stay active for
        //    the whole evaluation phase.
        self.settle(&[])?;
        let mut active = std::mem::take(&mut self.active);
        active.clear();
        for &g in &enables {
            if !self.group_done(g) {
                active.push(g);
            }
        }
        active.extend_from_slice(&conds);

        // 3. Settle combinational values with the surviving groups.
        self.settle(&active)?;

        // 4. Which candidate groups finished this cycle?
        self.done_flags.fill(false);
        for &g in enables.iter().chain(conds.iter()) {
            if self.group_done(g) {
                self.done_flags[g.index()] = true;
            }
        }

        // 5. Synchronous update.
        self.tick()?;

        // 6. Advance the control tree using this cycle's observations.
        self.root_done = ctrl_advance(
            &self.flat.ctrl,
            &mut self.rt,
            self.flat.root,
            &self.done_flags,
            &self.values,
        );
        self.cycles += 1;

        self.enables = enables;
        self.conds = conds;
        self.active = active;
        Ok(())
    }

    /// Does group `g`'s done hole evaluate high under the settled values?
    fn group_done(&self, g: GroupIdx) -> bool {
        let prog = &self.flat.prog;
        self.flat.groups[g].done_writes.iter().any(|&ai| {
            let a = &prog.assigns[ai];
            eval_guard(&prog.guards, a.guard, &self.values) && eval_atom(a.src, &self.values) != 0
        })
    }

    /// Fixpoint settling over the active assignments, into `self.values`.
    fn settle(&mut self, active: &[GroupIdx]) -> SimResult<()> {
        // Materialize the active assignment list once per settle.
        let mut asgns = std::mem::take(&mut self.asgn_scratch);
        asgns.clear();
        asgns.extend(self.flat.continuous.iter());
        for &g in active {
            asgns.extend(self.flat.groups[g].assigns.iter());
        }

        let prog = &self.flat.prog;
        let values = &mut self.values;
        values.fill(0);

        // Stateful outputs are fixed for the cycle.
        for (ci, cell) in prog.cells.enumerate() {
            match (&cell.kind, &prog.states[ci]) {
                (FlatCellKind::Reg { out, done, .. }, PrimState::Reg { val, done: d, .. }) => {
                    values[out.index()] = *val;
                    values[done.index()] = u64::from(*d);
                }
                (FlatCellKind::Mem { done, .. }, PrimState::Mem { done: d, .. }) => {
                    values[done.index()] = u64::from(*d);
                }
                (
                    FlatCellKind::Unit {
                        out, out2, done, ..
                    },
                    PrimState::Unit {
                        out: o,
                        out2: o2,
                        done: d,
                        ..
                    },
                ) => {
                    values[out.index()] = *o;
                    if let Some(p2) = out2 {
                        values[p2.index()] = *o2;
                    }
                    values[done.index()] = u64::from(*d);
                }
                _ => {}
            }
        }
        values[self.flat.go.index()] = 1;

        // Iterate until stable. The bound is generous: each pass fixes at
        // least one more port in a loop-free design.
        let budget = asgns.len() + prog.cells.len() + 8;
        let mut converged = false;
        'passes: for _ in 0..budget {
            let mut changed = false;

            // Assignments (with dynamic unique-driver checking). The
            // epoch counter replaces the per-pass `driven` map: a slot's
            // entry is valid only when its epoch matches the current pass.
            self.epoch += 1;
            self.touched.clear();
            for &ai in &asgns {
                let a = &prog.assigns[ai];
                if eval_guard(&prog.guards, a.guard, values) {
                    let v = eval_atom(a.src, values);
                    let d = a.dst.index();
                    if self.driven_epoch[d] == self.epoch {
                        if self.driven_val[d] != v {
                            self.asgn_scratch = asgns;
                            return Err(SimError::DriverConflict {
                                port: prog.ports[a.dst].path.clone(),
                                cycle: self.cycles,
                            });
                        }
                    } else {
                        self.driven_epoch[d] = self.epoch;
                        self.driven_val[d] = v;
                        self.touched.push(a.dst);
                    }
                }
            }
            for &p in &self.touched {
                let d = p.index();
                if values[d] != self.driven_val[d] {
                    values[d] = self.driven_val[d];
                    changed = true;
                }
            }

            // Combinational primitives and memory reads.
            for (ci, cell) in prog.cells.enumerate() {
                match &cell.kind {
                    FlatCellKind::Comb {
                        op,
                        left,
                        right,
                        out,
                        in_width,
                        out_width,
                    } => {
                        let l = values[left.index()];
                        let r = right.map(|p| values[p.index()]).unwrap_or(0);
                        let o = op.eval(l, r, *in_width, *out_width);
                        if values[out.index()] != o {
                            values[out.index()] = o;
                            changed = true;
                        }
                    }
                    FlatCellKind::Mem {
                        addrs, read_data, ..
                    } => {
                        let mut av = [0u64; 3];
                        for (k, &a) in addrs.iter().enumerate() {
                            av[k] = values[a.index()];
                        }
                        let o = prog.states[ci].mem_read(&av[..addrs.len()]);
                        if values[read_data.index()] != o {
                            values[read_data.index()] = o;
                            changed = true;
                        }
                    }
                    FlatCellKind::Reg { .. } | FlatCellKind::Unit { .. } => {}
                }
            }

            if !changed {
                converged = true;
                break 'passes;
            }
        }
        self.asgn_scratch = asgns;
        if converged {
            Ok(())
        } else {
            Err(SimError::CombinationalLoop(vec![format!(
                "fixpoint did not converge in component `{}`",
                self.flat.comp
            )]))
        }
    }

    fn tick(&mut self) -> SimResult<()> {
        let crate::flatten::FlatProgram {
            ref cells,
            ref mut states,
            ..
        } = self.flat.prog;
        let values = &self.values;
        for (ci, cell) in cells.enumerate() {
            match &cell.kind {
                FlatCellKind::Reg {
                    input, write_en, ..
                } => {
                    let inp = values[input.index()];
                    let we = values[write_en.index()] != 0;
                    states[ci].tick_reg(inp, we);
                }
                FlatCellKind::Mem {
                    addrs,
                    write_data,
                    write_en,
                    ..
                } => {
                    let mut av = [0u64; 3];
                    for (k, &a) in addrs.iter().enumerate() {
                        av[k] = values[a.index()];
                    }
                    let wd = values[write_data.index()];
                    let we = values[write_en.index()] != 0;
                    states[ci].tick_mem(&av[..addrs.len()], wd, we, &cell.path)?;
                }
                FlatCellKind::Unit {
                    left, right, go, ..
                } => {
                    let l = values[left.index()];
                    let r = values[right.index()];
                    let g = values[go.index()] != 0;
                    states[ci].tick_unit(l, r, g);
                }
                FlatCellKind::Comb { .. } => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calyx_core::ir::parse_context;

    fn interp(src: &str) -> Interpreter {
        let ctx = parse_context(src).unwrap();
        Interpreter::new(&ctx, "main").unwrap()
    }

    #[test]
    fn seq_of_register_writes() {
        let mut i = interp(
            r#"component main() -> () {
              cells { x = std_reg(32); }
              wires {
                group one { x.in = 32'd1; x.write_en = 1'd1; one[done] = x.done; }
                group two { x.in = 32'd2; x.write_en = 1'd1; two[done] = x.done; }
              }
              control { seq { one; two; } }
            }"#,
        );
        let stats = i.run(100).unwrap();
        assert_eq!(i.register_value("x").unwrap(), 2);
        // Each group: 1 write cycle + 1 done-observation cycle.
        assert_eq!(stats.cycles, 4);
    }

    #[test]
    fn while_loop_semantics() {
        let mut i = interp(
            r#"component main() -> () {
              cells { i = std_reg(8); lt = std_lt(8); add = std_add(8); }
              wires {
                group cond { lt.left = i.out; lt.right = 8'd7; cond[done] = 1'd1; }
                group incr {
                  add.left = i.out; add.right = 8'd1;
                  i.in = add.out; i.write_en = 1'd1;
                  incr[done] = i.done;
                }
              }
              control { while lt.out with cond { incr; } }
            }"#,
        );
        i.run(1000).unwrap();
        assert_eq!(i.register_value("i").unwrap(), 7);
    }

    #[test]
    fn par_and_if_semantics() {
        let mut i = interp(
            r#"component main() -> () {
              cells {
                a = std_reg(8); b = std_reg(8); r = std_reg(8);
                gt = std_gt(8);
              }
              wires {
                group wa { a.in = 8'd11; a.write_en = 1'd1; wa[done] = a.done; }
                group wb { b.in = 8'd4; b.write_en = 1'd1; wb[done] = b.done; }
                group cmp {
                  gt.left = a.out; gt.right = b.out;
                  cmp[done] = 1'd1;
                }
                group t { r.in = a.out; r.write_en = 1'd1; t[done] = r.done; }
                group f { r.in = b.out; r.write_en = 1'd1; f[done] = r.done; }
              }
              control {
                seq {
                  par { wa; wb; }
                  if gt.out with cmp { t; } else { f; }
                }
              }
            }"#,
        );
        i.run(100).unwrap();
        assert_eq!(i.register_value("r").unwrap(), 11, "max(11, 4)");
    }

    #[test]
    fn multiplier_latency_respected() {
        let mut i = interp(
            r#"component main() -> () {
              cells { mul = std_mult_pipe(16); r = std_reg(16); }
              wires {
                group m {
                  mul.left = 16'd9; mul.right = 16'd5;
                  mul.go = !mul.done ? 1'd1;
                  r.in = mul.out; r.write_en = mul.done ? 1'd1;
                  m[done] = r.done;
                }
              }
              control { m; }
            }"#,
        );
        let stats = i.run(100).unwrap();
        assert_eq!(i.register_value("r").unwrap(), 45);
        assert!(stats.cycles >= 5);
    }

    #[test]
    fn memory_initialization_and_readback() {
        let mut i = interp(
            r#"component main() -> () {
              cells { m = std_mem_d1(8, 4, 2); r = std_reg(8); }
              wires {
                group rd {
                  m.addr0 = 2'd3;
                  r.in = m.read_data; r.write_en = 1'd1;
                  rd[done] = r.done;
                }
                group wr {
                  m.addr0 = 2'd0; m.write_data = r.out; m.write_en = 1'd1;
                  wr[done] = m.done;
                }
              }
              control { seq { rd; wr; } }
            }"#,
        );
        i.set_memory("m", &[0, 0, 0, 77]).unwrap();
        i.run(100).unwrap();
        assert_eq!(i.memory("m").unwrap(), vec![77, 0, 0, 77]);
    }

    #[test]
    fn rejects_component_instances() {
        let ctx = parse_context(
            r#"
            component child() -> () { cells {} wires {} control {} }
            component main() -> () {
              cells { c = child(); }
              wires {}
              control {}
            }"#,
        )
        .unwrap();
        assert!(matches!(
            Interpreter::new(&ctx, "main"),
            Err(SimError::Elaboration(_))
        ));
    }

    #[test]
    fn empty_control_finishes_immediately() {
        let mut i = interp("component main() -> () { cells {} wires {} control {} }");
        let stats = i.run(10).unwrap();
        assert_eq!(stats.cycles, 0);
    }

    #[test]
    fn register_lookup_rejects_combinational_cells() {
        let i = interp(
            r#"component main() -> () {
              cells { add = std_add(8); }
              wires {}
              control {}
            }"#,
        );
        assert!(matches!(
            i.register_value("add"),
            Err(SimError::UnknownCell(_))
        ));
    }
}
