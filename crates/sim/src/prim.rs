//! Behavioral models of the standard primitives.
//!
//! The timing contract matches the library definitions in
//! `calyx_core::ir::primitives` and the emitted SystemVerilog:
//!
//! - registers/memories commit on the clock edge, with a *registered*
//!   `done` (high for the one cycle after `write_en`);
//! - `std_mult_pipe`/`std_div_pipe` raise `done` exactly `L = 4` cycles
//!   after `go` is first sampled, holding `out` stable afterwards;
//! - `std_sqrt` is the same shape with a *data-dependent* latency
//!   (half the significant bits of the operand, plus two);
//! - everything else is combinational.

use crate::error::{SimError, SimResult};

/// Mask `val` to `width` bits.
pub fn mask(val: u64, width: u32) -> u64 {
    if width >= 64 {
        val
    } else {
        val & ((1u64 << width) - 1)
    }
}

/// Sign-extend a `width`-bit value to i64.
pub fn to_signed(val: u64, width: u32) -> i64 {
    if width == 0 || width >= 64 {
        return val as i64;
    }
    let shift = 64 - width;
    ((val << shift) as i64) >> shift
}

/// Combinational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Not,
    Lsh,
    Rsh,
    Lt,
    Gt,
    Eq,
    Neq,
    Ge,
    Le,
    Slt,
    Sgt,
    Slice,
    Pad,
    Wire,
}

impl CombOp {
    /// Parse a primitive name into its operator.
    pub fn from_name(name: &str) -> Option<CombOp> {
        Some(match name {
            "std_add" => CombOp::Add,
            "std_sub" => CombOp::Sub,
            "std_and" => CombOp::And,
            "std_or" => CombOp::Or,
            "std_xor" => CombOp::Xor,
            "std_not" => CombOp::Not,
            "std_lsh" => CombOp::Lsh,
            "std_rsh" => CombOp::Rsh,
            "std_lt" => CombOp::Lt,
            "std_gt" => CombOp::Gt,
            "std_eq" => CombOp::Eq,
            "std_neq" => CombOp::Neq,
            "std_ge" => CombOp::Ge,
            "std_le" => CombOp::Le,
            "std_slt" => CombOp::Slt,
            "std_sgt" => CombOp::Sgt,
            "std_slice" => CombOp::Slice,
            "std_pad" => CombOp::Pad,
            "std_wire" => CombOp::Wire,
            _ => return None,
        })
    }

    /// Is this a two-operand operator (`left`/`right` rather than `in`)?
    pub fn is_binary(self) -> bool {
        !matches!(
            self,
            CombOp::Not | CombOp::Slice | CombOp::Pad | CombOp::Wire
        )
    }

    /// Evaluate with operand width `w` and output width `ow`.
    pub fn eval(self, l: u64, r: u64, w: u32, ow: u32) -> u64 {
        let b = |cond: bool| u64::from(cond);
        match self {
            CombOp::Add => mask(l.wrapping_add(r), w),
            CombOp::Sub => mask(l.wrapping_sub(r), w),
            CombOp::And => l & r,
            CombOp::Or => l | r,
            CombOp::Xor => l ^ r,
            CombOp::Not => mask(!l, w),
            CombOp::Lsh => {
                if r >= u64::from(w) {
                    0
                } else {
                    mask(l << r, w)
                }
            }
            CombOp::Rsh => {
                if r >= u64::from(w) {
                    0
                } else {
                    l >> r
                }
            }
            CombOp::Lt => b(l < r),
            CombOp::Gt => b(l > r),
            CombOp::Eq => b(l == r),
            CombOp::Neq => b(l != r),
            CombOp::Ge => b(l >= r),
            CombOp::Le => b(l <= r),
            CombOp::Slt => b(to_signed(l, w) < to_signed(r, w)),
            CombOp::Sgt => b(to_signed(l, w) > to_signed(r, w)),
            CombOp::Slice => mask(l, ow),
            CombOp::Pad => l,
            CombOp::Wire => l,
        }
    }
}

/// State of a stateful primitive instance.
#[derive(Debug, Clone)]
pub enum PrimState {
    /// `std_reg`.
    Reg {
        /// Stored value.
        val: u64,
        /// Registered done flag.
        done: bool,
        /// Bit width.
        width: u32,
    },
    /// `std_mem_d1`/`d2`/`d3`.
    Mem {
        /// Flat storage, row-major.
        data: Vec<u64>,
        /// Dimension sizes.
        dims: Vec<u64>,
        /// Registered done flag.
        done: bool,
        /// Element width.
        width: u32,
    },
    /// `std_mult_pipe` / `std_div_pipe` / `std_sqrt`: a unit with a
    /// go/done handshake and an internal countdown.
    Unit {
        /// Which operation to perform on completion.
        op: UnitOp,
        /// Latched operands.
        operands: (u64, u64),
        /// Remaining edges until completion (None = idle).
        remaining: Option<u32>,
        /// Primary result.
        out: u64,
        /// Secondary result (division remainder).
        out2: u64,
        /// Done pulse flag.
        done: bool,
        /// Operand width.
        width: u32,
    },
}

/// The operation a [`PrimState::Unit`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitOp {
    /// 4-cycle pipelined multiply.
    Mult,
    /// 4-cycle pipelined divide (quotient + remainder).
    Div,
    /// Data-dependent-latency integer square root.
    Sqrt,
}

impl UnitOp {
    /// Latency from `go` to `done` for the latched operands.
    pub fn latency(self, operand: u64) -> u32 {
        match self {
            UnitOp::Mult | UnitOp::Div => 4,
            // Data-dependent: half the significant bits, plus two. A zero
            // operand still takes two cycles.
            UnitOp::Sqrt => 2 + (64 - operand.leading_zeros()) / 2,
        }
    }

    /// Compute `(out, out2)` from the latched operands.
    pub fn compute(self, l: u64, r: u64, width: u32) -> (u64, u64) {
        match self {
            UnitOp::Mult => (mask(l.wrapping_mul(r), width), 0),
            UnitOp::Div => match (l.checked_div(r), l.checked_rem(r)) {
                (Some(q), Some(rem)) => (mask(q, width), mask(rem, width)),
                // Hardware convention: all-ones quotient, dividend
                // remainder (documented; division by zero is a frontend
                // bug but must not crash the simulation).
                _ => (mask(u64::MAX, width), l),
            },
            UnitOp::Sqrt => (isqrt(l), 0),
        }
    }
}

/// Integer square root (floor).
pub fn isqrt(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut x = (v as f64).sqrt() as u64;
    // Correct potential floating-point error.
    while x.saturating_mul(x) > v {
        x -= 1;
    }
    while (x + 1).saturating_mul(x + 1) <= v {
        x += 1;
    }
    x
}

impl PrimState {
    /// Flatten a multi-dimensional address; `addrs` has one entry per dim.
    pub fn flat_address(dims: &[u64], addrs: &[u64]) -> u64 {
        let mut flat = 0;
        for (a, d) in addrs.iter().zip(dims) {
            flat = flat * d + a;
        }
        flat
    }

    /// Read a memory combinationally; out-of-bounds reads return 0 (an
    /// undriven address while the memory's group is idle is normal).
    pub fn mem_read(&self, addrs: &[u64]) -> u64 {
        match self {
            PrimState::Mem { data, dims, .. } => {
                let flat = Self::flat_address(dims, addrs) as usize;
                data.get(flat).copied().unwrap_or(0)
            }
            _ => 0,
        }
    }

    /// Advance a register one clock edge.
    pub fn tick_reg(&mut self, input: u64, write_en: bool) {
        if let PrimState::Reg { val, done, width } = self {
            if write_en {
                *val = mask(input, *width);
                *done = true;
            } else {
                *done = false;
            }
        }
    }

    /// Advance a memory one clock edge.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] on a write past the end; the
    /// caller supplies `path` for the error message.
    pub fn tick_mem(
        &mut self,
        addrs: &[u64],
        write_data: u64,
        write_en: bool,
        path: &str,
    ) -> SimResult<()> {
        if let PrimState::Mem {
            data,
            dims,
            done,
            width,
        } = self
        {
            if write_en {
                let flat = Self::flat_address(dims, addrs);
                if (flat as usize) >= data.len() {
                    return Err(SimError::OutOfBounds {
                        memory: path.to_string(),
                        address: flat,
                        size: data.len() as u64,
                    });
                }
                data[flat as usize] = mask(write_data, *width);
                *done = true;
            } else {
                *done = false;
            }
        }
        Ok(())
    }

    /// Advance a go/done unit one clock edge.
    pub fn tick_unit(&mut self, left: u64, right: u64, go: bool) {
        if let PrimState::Unit {
            op,
            operands,
            remaining,
            out,
            out2,
            done,
            width,
        } = self
        {
            if *done {
                *done = false;
            }
            match remaining {
                Some(c) if *c <= 1 => {
                    let (a, b) = op.compute(operands.0, operands.1, *width);
                    *out = a;
                    *out2 = b;
                    *done = true;
                    *remaining = None;
                }
                Some(c) => *remaining = Some(*c - 1),
                None => {
                    if go {
                        *operands = (mask(left, *width), mask(right, *width));
                        let latency = op.latency(operands.0);
                        if latency <= 1 {
                            let (a, b) = op.compute(operands.0, operands.1, *width);
                            *out = a;
                            *out2 = b;
                            *done = true;
                        } else {
                            *remaining = Some(latency - 1);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking() {
        assert_eq!(mask(0x1ff, 8), 0xff);
        assert_eq!(mask(5, 64), 5);
        assert_eq!(mask(u64::MAX, 1), 1);
    }

    #[test]
    fn signed_views() {
        assert_eq!(to_signed(0xff, 8), -1);
        assert_eq!(to_signed(0x7f, 8), 127);
        assert_eq!(to_signed(0x80, 8), -128);
    }

    #[test]
    fn comb_arithmetic_wraps() {
        assert_eq!(CombOp::Add.eval(0xff, 1, 8, 8), 0);
        assert_eq!(CombOp::Sub.eval(0, 1, 8, 8), 0xff);
    }

    #[test]
    fn comb_shifts_saturate() {
        assert_eq!(CombOp::Lsh.eval(1, 3, 8, 8), 8);
        assert_eq!(CombOp::Lsh.eval(1, 8, 8, 8), 0);
        assert_eq!(CombOp::Rsh.eval(0x80, 7, 8, 8), 1);
        assert_eq!(CombOp::Rsh.eval(0x80, 9, 8, 8), 0);
    }

    #[test]
    fn signed_comparisons() {
        assert_eq!(CombOp::Slt.eval(0xff, 0, 8, 1), 1); // -1 < 0
        assert_eq!(CombOp::Lt.eval(0xff, 0, 8, 1), 0); // 255 < 0 is false
        assert_eq!(CombOp::Sgt.eval(1, 0xff, 8, 1), 1); // 1 > -1
    }

    #[test]
    fn slice_truncates_pad_extends() {
        assert_eq!(CombOp::Slice.eval(0x1234, 0, 16, 8), 0x34);
        assert_eq!(CombOp::Pad.eval(0x34, 0, 8, 16), 0x34);
    }

    #[test]
    fn register_done_is_registered() {
        let mut r = PrimState::Reg {
            val: 0,
            done: false,
            width: 8,
        };
        r.tick_reg(42, true);
        match &r {
            PrimState::Reg { val, done, .. } => {
                assert_eq!(*val, 42);
                assert!(*done, "done high the cycle after write_en");
            }
            _ => unreachable!(),
        }
        r.tick_reg(0, false);
        match &r {
            PrimState::Reg { val, done, .. } => {
                assert_eq!(*val, 42, "value held");
                assert!(!*done, "done is a one-cycle pulse");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn multiplier_takes_four_cycles() {
        let mut m = PrimState::Unit {
            op: UnitOp::Mult,
            operands: (0, 0),
            remaining: None,
            out: 0,
            out2: 0,
            done: false,
            width: 16,
        };
        // go during cycle 0; done must be visible during cycle 4.
        m.tick_unit(7, 6, true); // edge 0
        for edge in 1..4 {
            match &m {
                PrimState::Unit { done, .. } => assert!(!done, "edge {edge}"),
                _ => unreachable!(),
            }
            m.tick_unit(0, 0, false);
        }
        match &m {
            PrimState::Unit { done, out, .. } => {
                assert!(*done, "done after 4 edges");
                assert_eq!(*out, 42);
            }
            _ => unreachable!(),
        }
        // Done is a pulse.
        m.tick_unit(0, 0, false);
        match &m {
            PrimState::Unit { done, out, .. } => {
                assert!(!done);
                assert_eq!(*out, 42, "result held after done");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn divider_handles_zero() {
        assert_eq!(UnitOp::Div.compute(10, 3, 8), (3, 1));
        assert_eq!(UnitOp::Div.compute(10, 0, 8), (0xff, 10));
    }

    #[test]
    fn sqrt_latency_is_data_dependent() {
        assert!(UnitOp::Sqrt.latency(0) < UnitOp::Sqrt.latency(1 << 30));
        assert_eq!(UnitOp::Sqrt.compute(16, 0, 32).0, 4);
        assert_eq!(UnitOp::Sqrt.compute(17, 0, 32).0, 4);
        assert_eq!(UnitOp::Sqrt.compute(0, 0, 32).0, 0);
    }

    #[test]
    fn isqrt_exhaustive_small() {
        for v in 0..1000u64 {
            let r = isqrt(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "isqrt({v}) = {r}");
        }
    }

    #[test]
    fn memory_flat_addressing() {
        assert_eq!(PrimState::flat_address(&[4, 8], &[2, 3]), 19);
        assert_eq!(PrimState::flat_address(&[10], &[7]), 7);
        assert_eq!(PrimState::flat_address(&[2, 3, 4], &[1, 2, 3]), 23);
    }

    #[test]
    fn memory_write_bounds_checked() {
        let mut m = PrimState::Mem {
            data: vec![0; 4],
            dims: vec![4],
            done: false,
            width: 8,
        };
        m.tick_mem(&[2], 9, true, "m").unwrap();
        assert_eq!(m.mem_read(&[2]), 9);
        let err = m.tick_mem(&[5], 1, true, "m").unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { .. }));
        // Out-of-bounds *reads* are harmless zeros.
        assert_eq!(m.mem_read(&[100]), 0);
    }
}
