//! A PE-parametric systolic array generator targeting Calyx (paper §6.1).
//!
//! Generates matrix-multiply systolic arrays of arbitrary dimensions: data
//! streams left-to-right and top-to-bottom through a grid of processing
//! elements (PEs) while each PE multiply-accumulates. The generator emits
//!
//! - a **PE component** (a multiply–accumulate unit by default; callers can
//!   substitute their own component with the same interface),
//! - **data-movement groups**: feeders that read the input memories into
//!   the edge registers and shift groups that move values along the fabric,
//! - **compute groups** that activate PEs through the go/done calling
//!   convention,
//! - the **wavefront schedule** of Figure 6: for each time step, a `par` of
//!   the data movements valid at that step followed by a `par` of the PEs
//!   with valid inputs, then a drain phase writing accumulators to the
//!   result memory.
//!
//! Like the paper's generator, no `"static"` annotations are written by
//! hand: the compiler's latency-inference pass (§5.3) derives the PE
//! latency and the whole array becomes statically schedulable, so the same
//! generated program supports both latency-sensitive and
//! latency-insensitive compilation.

use calyx_core::ir::{attr, Builder, Component, Context, Control, Id, PortDef, PortRef};
use calyx_core::utils::bits_needed;

/// Dimensions of a generated array: computes `A (rows×inner) × B
/// (inner×cols)` on `width`-bit integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicConfig {
    /// Rows of the PE grid (= rows of A and of the result).
    pub rows: usize,
    /// Columns of the PE grid (= columns of B and of the result).
    pub cols: usize,
    /// The shared (reduction) dimension.
    pub inner: usize,
    /// Data width in bits.
    pub width: u32,
}

impl SystolicConfig {
    /// A square `n × n` matrix multiply on 32-bit values.
    pub fn square(n: usize) -> Self {
        SystolicConfig {
            rows: n,
            cols: n,
            inner: n,
            width: 32,
        }
    }

    /// Total wavefront steps before the drain phase.
    fn steps(&self) -> usize {
        self.rows + self.cols + self.inner - 2
    }
}

/// Names of the memories the generated design exposes (all `@external`).
///
/// - `l{r}`: row `r` of A, length `inner`;
/// - `t{c}`: column `c` of B, length `inner`;
/// - `out`: the rows×cols result, row-major.
pub fn memory_names(cfg: &SystolicConfig) -> (Vec<String>, Vec<String>, String) {
    (
        (0..cfg.rows).map(|r| format!("l{r}")).collect(),
        (0..cfg.cols).map(|c| format!("t{c}")).collect(),
        "out".to_string(),
    )
}

/// Generate the default multiply–accumulate PE.
///
/// Interface: inputs `top`, `left` (the streamed operands); output `out`
/// (the accumulator); plus the implicit go/done pair. One activation
/// performs `acc += top * left`. The PE carries no `"static"` annotation —
/// inference derives its 6-cycle latency from the pipelined multiplier.
pub fn build_mac_pe(ctx: &Context, width: u32) -> Component {
    let mut pe = Component::new(
        "mac_pe",
        vec![
            PortDef::new("top", width, calyx_core::ir::Direction::Input),
            PortDef::new("left", width, calyx_core::ir::Direction::Input),
            PortDef::new("out", width, calyx_core::ir::Direction::Output),
        ],
    );
    let mut b = Builder::new(&mut pe, ctx);
    let w = u64::from(width);
    let mul = b.add_primitive("mul", "std_mult_pipe", &[w]);
    let prod = b.add_primitive("prod", "std_reg", &[w]);
    let acc = b.add_primitive("acc", "std_reg", &[w]);
    let add = b.add_primitive("add", "std_add", &[w]);

    // prod <- top * left (latency 4 + 1; inferred by rule C of §5.3).
    let do_mul = b.add_group("do_mul");
    b.asgn(do_mul, (mul, "left"), PortRef::this("top"));
    b.asgn(do_mul, (mul, "right"), PortRef::this("left"));
    b.asgn_const_guarded(
        do_mul,
        (mul, "go"),
        1,
        1,
        calyx_core::ir::Guard::Port(PortRef::cell(mul, "done")).not(),
    );
    b.asgn(do_mul, (prod, "in"), (mul, "out"));
    b.asgn_const_guarded(
        do_mul,
        (prod, "write_en"),
        1,
        1,
        calyx_core::ir::Guard::Port(PortRef::cell(mul, "done")),
    );
    b.group_done(do_mul, (prod, "done"));

    // acc <- acc + prod (latency 1; rule B).
    let do_add = b.add_group("do_add");
    b.asgn(do_add, (add, "left"), (acc, "out"));
    b.asgn(do_add, (add, "right"), (prod, "out"));
    b.asgn(do_add, (acc, "in"), (add, "out"));
    b.asgn_const(do_add, (acc, "write_en"), 1, 1);
    b.group_done(do_add, (acc, "done"));

    b.cont(PortRef::this("out"), (acc, "out"));
    b.set_control(Control::seq(vec![
        Control::enable(do_mul),
        Control::enable(do_add),
    ]));
    pe
}

/// Generate a complete systolic matrix-multiply design.
///
/// The returned context contains the PE component and a `main` component
/// with the memories, fabric registers, data-movement groups, and the
/// wavefront control schedule.
#[allow(clippy::needless_range_loop)]
pub fn generate(cfg: &SystolicConfig) -> Context {
    let mut ctx = Context::new();
    let pe_comp = build_mac_pe(&ctx, cfg.width);
    let pe_name = pe_comp.name;
    ctx.add_component(pe_comp);

    let mut main = ctx.new_component("main");
    let w = u64::from(cfg.width);
    let k = cfg.inner as u64;
    let idx_width = bits_needed(k.saturating_sub(1)).max(1);
    let row_bits = bits_needed((cfg.rows as u64).saturating_sub(1)).max(1);
    let col_bits = bits_needed((cfg.cols as u64).saturating_sub(1)).max(1);

    struct Grid {
        pes: Vec<Vec<Id>>,
        top_regs: Vec<Vec<Id>>,
        left_regs: Vec<Vec<Id>>,
    }

    let grid;
    let mut feed_groups_t: Vec<Id> = Vec::new();
    let mut feed_groups_l: Vec<Id> = Vec::new();
    let mut incr_groups_t: Vec<Id> = Vec::new();
    let mut incr_groups_l: Vec<Id> = Vec::new();
    let mut down_groups: Vec<Vec<Option<Id>>> = vec![vec![None; cfg.cols]; cfg.rows];
    let mut right_groups: Vec<Vec<Option<Id>>> = vec![vec![None; cfg.cols]; cfg.rows];
    let mut pe_groups: Vec<Vec<Id>> = Vec::new();
    let mut write_groups: Vec<Id> = Vec::new();
    {
        let mut b = Builder::new(&mut main, &ctx);

        // Input memories and their index counters.
        let t_mems: Vec<Id> = (0..cfg.cols)
            .map(|c| {
                let m = b.add_primitive(
                    &format!("t{c}"),
                    "std_mem_d1",
                    &[w, k, u64::from(idx_width)],
                );
                b.set_cell_attribute(m, attr::external(), 1);
                m
            })
            .collect();
        let l_mems: Vec<Id> = (0..cfg.rows)
            .map(|r| {
                let m = b.add_primitive(
                    &format!("l{r}"),
                    "std_mem_d1",
                    &[w, k, u64::from(idx_width)],
                );
                b.set_cell_attribute(m, attr::external(), 1);
                m
            })
            .collect();
        let out_mem = b.add_primitive(
            "out",
            "std_mem_d2",
            &[
                w,
                cfg.rows as u64,
                cfg.cols as u64,
                u64::from(row_bits),
                u64::from(col_bits),
            ],
        );
        b.set_cell_attribute(out_mem, attr::external(), 1);

        // Fabric: PEs plus their operand registers.
        let mut pes = Vec::new();
        let mut top_regs = Vec::new();
        let mut left_regs = Vec::new();
        for r in 0..cfg.rows {
            let mut pe_row = Vec::new();
            let mut top_row = Vec::new();
            let mut left_row = Vec::new();
            for c in 0..cfg.cols {
                let pe = b.add_component_cell(&format!("pe_{r}_{c}"), pe_name.as_str());
                let tr = b.add_primitive(&format!("top_{r}_{c}"), "std_reg", &[w]);
                let lr = b.add_primitive(&format!("left_{r}_{c}"), "std_reg", &[w]);
                // Operands are wired continuously; activation is scheduled.
                b.cont((pe, "top"), (tr, "out"));
                b.cont((pe, "left"), (lr, "out"));
                pe_row.push(pe);
                top_row.push(tr);
                left_row.push(lr);
            }
            pes.push(pe_row);
            top_regs.push(top_row);
            left_regs.push(left_row);
        }
        grid = Grid {
            pes,
            top_regs,
            left_regs,
        };

        // Feeders: edge registers load from the memories at the index
        // counters; separate increment groups advance the counters in the
        // same par step (the register read observes the pre-increment
        // value).
        let idx_t: Vec<Id> = (0..cfg.cols)
            .map(|c| b.add_primitive(&format!("idx_t{c}"), "std_reg", &[u64::from(idx_width)]))
            .collect();
        let idx_l: Vec<Id> = (0..cfg.rows)
            .map(|r| b.add_primitive(&format!("idx_l{r}"), "std_reg", &[u64::from(idx_width)]))
            .collect();
        for c in 0..cfg.cols {
            let g = b.add_group(&format!("feed_t{c}"));
            b.asgn(g, (t_mems[c], "addr0"), (idx_t[c], "out"));
            b.asgn(g, (grid.top_regs[0][c], "in"), (t_mems[c], "read_data"));
            b.asgn_const(g, (grid.top_regs[0][c], "write_en"), 1, 1);
            b.group_done(g, (grid.top_regs[0][c], "done"));
            feed_groups_t.push(g);

            let add = b.add_primitive(
                &format!("incr_add_t{c}"),
                "std_add",
                &[u64::from(idx_width)],
            );
            let ig = b.add_group(&format!("incr_t{c}"));
            b.asgn(ig, (add, "left"), (idx_t[c], "out"));
            b.asgn_const(ig, (add, "right"), 1, idx_width);
            b.asgn(ig, (idx_t[c], "in"), (add, "out"));
            b.asgn_const(ig, (idx_t[c], "write_en"), 1, 1);
            b.group_done(ig, (idx_t[c], "done"));
            incr_groups_t.push(ig);
        }
        for r in 0..cfg.rows {
            let g = b.add_group(&format!("feed_l{r}"));
            b.asgn(g, (l_mems[r], "addr0"), (idx_l[r], "out"));
            b.asgn(g, (grid.left_regs[r][0], "in"), (l_mems[r], "read_data"));
            b.asgn_const(g, (grid.left_regs[r][0], "write_en"), 1, 1);
            b.group_done(g, (grid.left_regs[r][0], "done"));
            feed_groups_l.push(g);

            let add = b.add_primitive(
                &format!("incr_add_l{r}"),
                "std_add",
                &[u64::from(idx_width)],
            );
            let ig = b.add_group(&format!("incr_l{r}"));
            b.asgn(ig, (add, "left"), (idx_l[r], "out"));
            b.asgn_const(ig, (add, "right"), 1, idx_width);
            b.asgn(ig, (idx_l[r], "in"), (add, "out"));
            b.asgn_const(ig, (idx_l[r], "write_en"), 1, 1);
            b.group_done(ig, (idx_l[r], "done"));
            incr_groups_l.push(ig);
        }

        // Shifts along the fabric.
        for r in 1..cfg.rows {
            for c in 0..cfg.cols {
                let g = b.add_group(&format!("down_{r}_{c}"));
                b.asgn(
                    g,
                    (grid.top_regs[r][c], "in"),
                    (grid.top_regs[r - 1][c], "out"),
                );
                b.asgn_const(g, (grid.top_regs[r][c], "write_en"), 1, 1);
                b.group_done(g, (grid.top_regs[r][c], "done"));
                down_groups[r][c] = Some(g);
            }
        }
        for r in 0..cfg.rows {
            for c in 1..cfg.cols {
                let g = b.add_group(&format!("right_{r}_{c}"));
                b.asgn(
                    g,
                    (grid.left_regs[r][c], "in"),
                    (grid.left_regs[r][c - 1], "out"),
                );
                b.asgn_const(g, (grid.left_regs[r][c], "write_en"), 1, 1);
                b.group_done(g, (grid.left_regs[r][c], "done"));
                right_groups[r][c] = Some(g);
            }
        }

        // Compute groups: the go/done idiom for subcomponents.
        for r in 0..cfg.rows {
            let mut row = Vec::new();
            for c in 0..cfg.cols {
                let g = b.add_group(&format!("run_pe_{r}_{c}"));
                b.asgn_const(g, (grid.pes[r][c], "go"), 1, 1);
                b.group_done(g, (grid.pes[r][c], "done"));
                row.push(g);
            }
            pe_groups.push(row);
        }

        // Drain: write each accumulator to the result memory.
        for r in 0..cfg.rows {
            for c in 0..cfg.cols {
                let g = b.add_group(&format!("write_{r}_{c}"));
                b.asgn_const(g, (out_mem, "addr0"), r as u64, row_bits);
                b.asgn_const(g, (out_mem, "addr1"), c as u64, col_bits);
                b.asgn(g, (out_mem, "write_data"), (grid.pes[r][c], "out"));
                b.asgn_const(g, (out_mem, "write_en"), 1, 1);
                b.group_done(g, (out_mem, "done"));
                write_groups.push(g);
            }
        }
    }

    // The wavefront schedule (paper Fig. 6): at step t, PE (r, c) processes
    // element k = t - r - c, valid while 0 <= k < inner.
    let active = |r: usize, c: usize, t: usize| -> bool { t >= r + c && t < r + c + cfg.inner };
    let mut schedule: Vec<Control> = Vec::new();
    for t in 0..cfg.steps() {
        let mut moves: Vec<Control> = Vec::new();
        for c in 0..cfg.cols {
            if active(0, c, t) {
                moves.push(Control::enable(feed_groups_t[c]));
                moves.push(Control::enable(incr_groups_t[c]));
            }
        }
        for r in 0..cfg.rows {
            if active(r, 0, t) {
                moves.push(Control::enable(feed_groups_l[r]));
                moves.push(Control::enable(incr_groups_l[r]));
            }
        }
        for r in 1..cfg.rows {
            for c in 0..cfg.cols {
                if active(r, c, t) {
                    moves.push(Control::enable(
                        down_groups[r][c].expect("interior rows have down groups"),
                    ));
                }
            }
        }
        for r in 0..cfg.rows {
            for c in 1..cfg.cols {
                if active(r, c, t) {
                    moves.push(Control::enable(
                        right_groups[r][c].expect("interior columns have right groups"),
                    ));
                }
            }
        }
        if !moves.is_empty() {
            schedule.push(Control::par(moves));
        }
        let mut computes: Vec<Control> = Vec::new();
        for (r, row) in pe_groups.iter().enumerate() {
            for (c, &g) in row.iter().enumerate() {
                if active(r, c, t) {
                    computes.push(Control::enable(g));
                }
            }
        }
        if !computes.is_empty() {
            schedule.push(Control::par(computes));
        }
    }
    schedule.extend(write_groups.into_iter().map(Control::enable));
    main.control = Control::seq(schedule);

    ctx.add_component(main);
    ctx
}

/// Reference semantics: `width`-bit wrapping matrix multiply.
#[allow(clippy::needless_range_loop)]
pub fn reference_matmul(
    a: &[Vec<u64>],
    bm: &[Vec<u64>],
    inner: usize,
    width: u32,
) -> Vec<Vec<u64>> {
    let mask = |v: u64| {
        if width >= 64 {
            v
        } else {
            v & ((1u64 << width) - 1)
        }
    };
    a.iter()
        .map(|row| {
            (0..bm[0].len())
                .map(|c| {
                    let mut acc: u64 = 0;
                    for k in 0..inner {
                        acc = mask(acc.wrapping_add(mask(row[k].wrapping_mul(bm[k][c]))));
                    }
                    acc
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use calyx_core::ir::validate;
    use calyx_core::passes;
    use calyx_sim::rtl::Simulator;

    fn run_array(
        cfg: &SystolicConfig,
        a: &[Vec<u64>],
        bm: &[Vec<u64>],
        static_: bool,
    ) -> (Vec<u64>, u64) {
        let mut ctx = generate(cfg);
        validate::validate_context(&ctx).expect("generated design is well-formed");
        if static_ {
            passes::lower_pipeline_static().run(&mut ctx).unwrap();
        } else {
            passes::lower_pipeline().run(&mut ctx).unwrap();
        }
        let mut sim = Simulator::new(&ctx, "main").unwrap();
        for (r, row) in a.iter().enumerate() {
            sim.set_memory(&[&format!("l{r}")], row).unwrap();
        }
        for c in 0..cfg.cols {
            let col: Vec<u64> = (0..cfg.inner).map(|k| bm[k][c]).collect();
            sim.set_memory(&[&format!("t{c}")], &col).unwrap();
        }
        let stats = sim.run(1_000_000).unwrap();
        (sim.memory(&["out"]).unwrap(), stats.cycles)
    }

    fn sample(n: usize) -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
        let a: Vec<Vec<u64>> = (0..n)
            .map(|r| (0..n).map(|k| (r * n + k + 1) as u64).collect())
            .collect();
        let b: Vec<Vec<u64>> = (0..n)
            .map(|k| (0..n).map(|c| ((k + 2) * (c + 1) % 17) as u64).collect())
            .collect();
        (a, b)
    }

    #[test]
    fn two_by_two_matches_reference() {
        let cfg = SystolicConfig::square(2);
        let (a, bm) = sample(2);
        let expected = reference_matmul(&a, &bm, 2, 32);
        let (got, _) = run_array(&cfg, &a, &bm, false);
        let flat: Vec<u64> = expected.into_iter().flatten().collect();
        assert_eq!(got, flat);
    }

    #[test]
    fn static_and_dynamic_agree_and_static_is_faster() {
        let cfg = SystolicConfig::square(3);
        let (a, bm) = sample(3);
        let expected: Vec<u64> = reference_matmul(&a, &bm, 3, 32)
            .into_iter()
            .flatten()
            .collect();
        let (dyn_out, dyn_cycles) = run_array(&cfg, &a, &bm, false);
        let (st_out, st_cycles) = run_array(&cfg, &a, &bm, true);
        assert_eq!(dyn_out, expected);
        assert_eq!(st_out, expected);
        assert!(
            st_cycles < dyn_cycles,
            "static {st_cycles} vs dynamic {dyn_cycles}"
        );
    }

    #[test]
    fn rectangular_arrays_work() {
        let cfg = SystolicConfig {
            rows: 2,
            cols: 3,
            inner: 4,
            width: 32,
        };
        let a: Vec<Vec<u64>> = vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]];
        let bm: Vec<Vec<u64>> = vec![vec![1, 0, 2], vec![0, 1, 2], vec![3, 1, 0], vec![1, 1, 1]];
        let expected: Vec<u64> = reference_matmul(&a, &bm, 4, 32)
            .into_iter()
            .flatten()
            .collect();
        let (got, _) = run_array(&cfg, &a, &bm, false);
        assert_eq!(got, expected);
    }

    #[test]
    fn latency_is_fully_inferred() {
        // The paper: "the Calyx compiler is able to completely infer the
        // latency of a generated systolic array when the processing element
        // provides its latency."
        use calyx_core::passes::Pass;
        let mut ctx = generate(&SystolicConfig::square(2));
        passes::InferStaticTiming.run(&mut ctx).unwrap();
        passes::StaticTiming.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        assert!(
            main.static_latency().is_some(),
            "whole-array latency should be inferred"
        );
    }

    #[test]
    fn group_and_cell_counts_scale() {
        let small = generate(&SystolicConfig::square(2));
        let large = generate(&SystolicConfig::square(4));
        let count = |ctx: &Context| {
            let main = ctx.component("main").unwrap();
            (
                main.cells.len(),
                main.groups.len(),
                main.control.statement_count(),
            )
        };
        let (sc, sg, ss) = count(&small);
        let (lc, lg, ls) = count(&large);
        assert!(lc > sc && lg > sg && ls > ss);
    }
}
