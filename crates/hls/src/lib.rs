//! An HLS scheduling and resource model standing in for Vivado HLS.
//!
//! The paper's baseline is a commercial C-to-RTL compiler. This crate
//! models the parts of its behavior that determine the evaluation's
//! comparisons (DESIGN.md §2): operator *chaining* within a clock period,
//! innermost-loop *pipelining* with an initiation interval (II) limited by
//! memory-port contention and loop-carried recurrences, and *unit
//! allocation* priced with the same technology table as the Calyx backend's
//! area model.
//!
//! It consumes the *lowered Dahlia AST* — the same program the Calyx
//! backend compiles — so both toolchains see identical workloads:
//!
//! - a straight-line block is scheduled as a dependency DAG; statement
//!   latencies are `1` per memory read (synchronous BRAM), `3` per multiply
//!   (pipelined DSP), `8` per divide, `16` per square root, `1` per store,
//!   and `0` for chained combinational arithmetic;
//! - an innermost `for` loop runs `depth + II·(trips−1) + 2` cycles, where
//!   `II = max(1, port pressure, recurrence)`: each memory provides two
//!   ports per cycle, and a loop-carried value produced by a multi-cycle
//!   unit stretches the II to that unit's latency;
//! - outer loops multiply; `if` takes the worst branch (predication);
//!   unordered composition overlaps (dataflow).
//!
//! Like any model, absolute cycle counts are approximate; the quantities
//! the paper plots — ratios between this baseline and the simulated Calyx
//! designs — depend only on the model being applied consistently.

use calyx_backend::area::{primitive_area, Area};
use calyx_core::errors::{CalyxResult, Error};
use calyx_dahlia::ast::{BinOp, Expr, Program, Stmt};
use calyx_dahlia::backend::memory_banks;
use std::collections::{BTreeMap, BTreeSet};

/// Latency of a pipelined multiplier.
const L_MULT: u64 = 3;
/// Latency of a pipelined divider.
const L_DIV: u64 = 8;
/// Latency of the square-root unit.
const L_SQRT: u64 = 16;
/// Fixed control overhead per loop (counter increment + exit test).
const LOOP_OVERHEAD: u64 = 2;

/// The modeled synthesis report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HlsReport {
    /// Estimated execution cycles.
    pub cycles: u64,
    /// Estimated resource usage (same technology table as `calyx-backend`).
    pub area: Area,
}

/// Model a lowered Dahlia program.
///
/// # Errors
///
/// Returns [`Error::Malformed`] for `while` loops (the PolyBench kernels
/// use only statically-bounded `for` loops, which is also what the real
/// tool needs for a static latency report).
pub fn estimate(program: &Program) -> CalyxResult<HlsReport> {
    let mut units = UnitDemand::default();
    let cycles = stmt_cycles(&program.body, &mut units)?;

    // Memories: identical pricing to the Calyx backend.
    let mut area = Area::default();
    for decl in &program.decls {
        for (_, dims) in memory_banks(decl) {
            let mut params = vec![u64::from(decl.width)];
            params.extend(dims.iter().copied());
            params.extend(dims.iter().map(|&s| u64::from(addr_bits(s))));
            let prim = match dims.len() {
                1 => "std_mem_d1",
                2 => "std_mem_d2",
                _ => "std_mem_d3",
            };
            area = area + primitive_area(prim, &params);
        }
    }

    // Functional units: the widest simultaneous demand of any pipelined
    // loop body (II = 1 requires dedicated units), priced like primitives.
    let w = 32u64;
    for _ in 0..units.mults {
        area = area + primitive_area("std_mult_pipe", &[w]);
    }
    for _ in 0..units.divs {
        area = area + primitive_area("std_div_pipe", &[w]);
    }
    for _ in 0..units.sqrts {
        area = area + primitive_area("std_sqrt", &[w]);
    }
    for _ in 0..units.adders {
        area = area + primitive_area("std_add", &[w]);
    }
    for _ in 0..units.comparators {
        area = area + primitive_area("std_lt", &[w]);
    }

    // Loop control and pipeline registers.
    area.luts += units.loops * 16 + units.pipelined_loops * 50;
    area.ffs += units.loops * 8 + units.max_depth * 32;

    Ok(HlsReport { cycles, area })
}

fn addr_bits(size: u64) -> u32 {
    calyx_core::utils::bits_needed(size.saturating_sub(1)).max(1)
}

/// Peak functional-unit demand across the program.
#[derive(Debug, Default)]
struct UnitDemand {
    mults: u64,
    divs: u64,
    sqrts: u64,
    adders: u64,
    comparators: u64,
    loops: u64,
    pipelined_loops: u64,
    max_depth: u64,
}

impl UnitDemand {
    fn take_max(&mut self, other: &UnitDemand) {
        self.mults = self.mults.max(other.mults);
        self.divs = self.divs.max(other.divs);
        self.sqrts = self.sqrts.max(other.sqrts);
        self.adders = self.adders.max(other.adders);
        self.comparators = self.comparators.max(other.comparators);
    }
}

/// Is this statement (transitively) loop-free?
fn is_straight_line(s: &Stmt) -> bool {
    match s {
        Stmt::Let { .. } | Stmt::AssignVar { .. } | Stmt::Store { .. } => true,
        Stmt::If { then_, else_, .. } => {
            then_.iter().all(is_straight_line) && else_.iter().all(is_straight_line)
        }
        Stmt::While { .. } | Stmt::For { .. } => false,
        Stmt::Seq(ss) | Stmt::Par(ss) => ss.iter().all(is_straight_line),
    }
}

/// Flatten a straight-line statement into its simple statements
/// (conditionals contribute both branches — predication).
fn flatten<'a>(s: &'a Stmt, out: &mut Vec<&'a Stmt>) {
    match s {
        Stmt::Let { .. } | Stmt::AssignVar { .. } | Stmt::Store { .. } => out.push(s),
        Stmt::If { then_, else_, .. } => {
            for s in then_.iter().chain(else_) {
                flatten(s, out);
            }
        }
        Stmt::Seq(ss) | Stmt::Par(ss) => {
            for s in ss {
                flatten(s, out);
            }
        }
        Stmt::While { .. } | Stmt::For { .. } => unreachable!("straight-line only"),
    }
}

struct Access {
    reads_vars: BTreeSet<String>,
    writes_vars: BTreeSet<String>,
    mem_ports: BTreeMap<String, u64>,
    unit_latency: u64,
    is_store: bool,
    has_load: bool,
}

fn expr_access(e: &Expr, acc: &mut Access, units: &mut UnitDemand) {
    match e {
        Expr::Num(_) => {}
        Expr::Var(v) => {
            acc.reads_vars.insert(v.to_string());
        }
        Expr::ReadMem { mem, bank, indices } => {
            let key = match bank {
                Some(b) => format!("{mem}#{b}"),
                None => mem.to_string(),
            };
            *acc.mem_ports.entry(key).or_insert(0) += 1;
            acc.has_load = true;
            for i in indices {
                expr_access(i, acc, units);
            }
        }
        Expr::Binop { op, lhs, rhs } => {
            match op {
                BinOp::Mul => {
                    acc.unit_latency = acc.unit_latency.max(L_MULT);
                    units.mults += 1;
                }
                BinOp::Div | BinOp::Rem => {
                    acc.unit_latency = acc.unit_latency.max(L_DIV);
                    units.divs += 1;
                }
                BinOp::Add | BinOp::Sub => units.adders += 1,
                op if op.is_comparison() => units.comparators += 1,
                _ => units.adders += 1,
            }
            expr_access(lhs, acc, units);
            expr_access(rhs, acc, units);
        }
        Expr::Sqrt(inner) => {
            acc.unit_latency = acc.unit_latency.max(L_SQRT);
            units.sqrts += 1;
            expr_access(inner, acc, units);
        }
    }
}

fn stmt_access(s: &Stmt, units: &mut UnitDemand) -> Access {
    let mut acc = Access {
        reads_vars: BTreeSet::new(),
        writes_vars: BTreeSet::new(),
        mem_ports: BTreeMap::new(),
        unit_latency: 0,
        is_store: false,
        has_load: false,
    };
    match s {
        Stmt::Let { var, init, .. } => {
            expr_access(init, &mut acc, units);
            acc.writes_vars.insert(var.to_string());
        }
        Stmt::AssignVar { var, rhs } => {
            expr_access(rhs, &mut acc, units);
            acc.writes_vars.insert(var.to_string());
        }
        Stmt::Store {
            mem,
            bank,
            indices,
            rhs,
        } => {
            expr_access(rhs, &mut acc, units);
            for i in indices {
                expr_access(i, &mut acc, units);
            }
            let key = match bank {
                Some(b) => format!("{mem}#{b}"),
                None => mem.to_string(),
            };
            *acc.mem_ports.entry(key).or_insert(0) += 1;
            acc.is_store = true;
        }
        _ => unreachable!("simple statements only"),
    }
    acc
}

fn statement_latency(acc: &Access) -> u64 {
    u64::from(acc.has_load) + acc.unit_latency + u64::from(acc.is_store)
}

/// Schedule a straight-line body: returns `(critical path depth, II)`.
fn schedule_block(stmts: &[&Stmt], units: &mut UnitDemand) -> (u64, u64) {
    let mut body_units = UnitDemand::default();
    let accesses: Vec<Access> = stmts
        .iter()
        .map(|s| stmt_access(s, &mut body_units))
        .collect();
    units.take_max(&body_units);

    // Critical path over RAW variable dependencies (ASAP schedule).
    let mut finish = vec![0u64; stmts.len()];
    for i in 0..stmts.len() {
        let mut start = 0;
        for j in 0..i {
            let depends = accesses[i]
                .reads_vars
                .iter()
                .any(|r| accesses[j].writes_vars.contains(r));
            if depends {
                start = start.max(finish[j]);
            }
        }
        finish[i] = start + statement_latency(&accesses[i]);
    }
    let depth = finish.into_iter().max().unwrap_or(0).max(1);

    // II from memory-port pressure (2 ports per memory per cycle)...
    let mut ports: BTreeMap<String, u64> = BTreeMap::new();
    for acc in &accesses {
        for (mem, n) in &acc.mem_ports {
            *ports.entry(mem.clone()).or_insert(0) += n;
        }
    }
    let port_ii = ports.values().map(|&n| n.div_ceil(2)).max().unwrap_or(1);

    // ...and loop-carried recurrences: a value read and written in the body
    // carries a dependency whose length is the producing statement's
    // latency.
    let mut rec_ii = 1;
    for (i, acc) in accesses.iter().enumerate() {
        let self_dep = acc
            .writes_vars
            .iter()
            .any(|w| accesses.iter().any(|a| a.reads_vars.contains(w)));
        let mem_dep = acc.is_store
            && accesses.iter().enumerate().any(|(j, a)| {
                j != i && a.has_load && a.mem_ports.keys().any(|k| acc.mem_ports.contains_key(k))
            });
        if self_dep || mem_dep {
            rec_ii = rec_ii.max(statement_latency(acc).max(1));
        }
    }

    (depth, port_ii.max(rec_ii))
}

fn stmt_cycles(s: &Stmt, units: &mut UnitDemand) -> CalyxResult<u64> {
    Ok(match s {
        Stmt::Let { .. } | Stmt::AssignVar { .. } | Stmt::Store { .. } => {
            let mut flat = Vec::new();
            flatten(s, &mut flat);
            let (depth, _) = schedule_block(&flat, units);
            depth
        }
        Stmt::If { then_, else_, .. } => {
            if is_straight_line(s) {
                let mut flat = Vec::new();
                flatten(s, &mut flat);
                let (depth, _) = schedule_block(&flat, units);
                depth
            } else {
                let mut t = 0;
                for s in then_ {
                    t += stmt_cycles(s, units)?;
                }
                let mut f = 0;
                for s in else_ {
                    f += stmt_cycles(s, units)?;
                }
                1 + t.max(f)
            }
        }
        Stmt::While { .. } => {
            return Err(Error::malformed(
                "the HLS model needs static trip counts; use for loops",
            ))
        }
        Stmt::For { lo, hi, body, .. } => {
            units.loops += 1;
            let trips = hi - lo;
            let body_stmt = Stmt::Seq(body.clone());
            if is_straight_line(&body_stmt) {
                // Pipelined innermost loop.
                units.pipelined_loops += 1;
                let mut flat = Vec::new();
                flatten(&body_stmt, &mut flat);
                let (depth, ii) = schedule_block(&flat, units);
                units.max_depth = units.max_depth.max(depth);
                depth + ii * trips.saturating_sub(1) + LOOP_OVERHEAD
            } else {
                // Outer loop: sequential iterations.
                let body_cycles = stmt_cycles(&body_stmt, units)?;
                trips * (body_cycles + 1) + LOOP_OVERHEAD
            }
        }
        Stmt::Seq(ss) => {
            if is_straight_line(s) {
                let mut flat = Vec::new();
                flatten(s, &mut flat);
                let (depth, _) = schedule_block(&flat, units);
                depth
            } else {
                let mut total = 0;
                for s in ss {
                    total += stmt_cycles(s, units)?;
                }
                total
            }
        }
        Stmt::Par(ss) => {
            // Dataflow: unordered statements overlap.
            let mut worst = 0;
            for s in ss {
                worst = worst.max(stmt_cycles(s, units)?);
            }
            worst
        }
    })
}

/// Convenience: model a PolyBench-style kernel source directly.
///
/// # Errors
///
/// Propagates Dahlia front-end errors and model restrictions.
pub fn estimate_source(src: &str) -> CalyxResult<HlsReport> {
    let (program, _) = calyx_dahlia::compile_with_ast(src)?;
    estimate(&program)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> HlsReport {
        estimate_source(src).unwrap()
    }

    fn gemm_src(n: u64) -> String {
        format!(
            "decl a: ubit<32>[{n}][{n}];
             decl b: ubit<32>[{n}][{n}];
             decl c: ubit<32>[{n}][{n}];
             for (let i: ubit<8> = 0..{n}) {{
               for (let j: ubit<8> = 0..{n}) {{
                 for (let k: ubit<8> = 0..{n}) {{
                   let t: ubit<32> = a[i][k] * b[k][j];
                   ---
                   c[i][j] := c[i][j] + t;
                 }}
               }}
             }}"
        )
    }

    #[test]
    fn matmul_pipelines_the_inner_loop() {
        let report = model(&gemm_src(8));
        // The inner loop (8 trips) pipelines: ~depth + II*7 + overhead per
        // (i, j); 64 such loop runs plus outer overhead. Must be far below
        // the fully sequential bound of 64 * 8 * ~6 = 3072.
        assert!(report.cycles < 2500, "{report:?}");
        assert!(report.cycles > 400, "{report:?}");
        assert!(report.area.dsps >= 1);
    }

    #[test]
    fn accumulator_recurrence_does_not_break_ii() {
        let src = "
            decl a: ubit<32>[16];
            let acc: ubit<32> = 0;
            ---
            for (let i: ubit<8> = 0..16) {
              acc := acc + a[i];
            }";
        let report = model(src);
        assert!(report.cycles < 16 * 3, "{report:?}");
    }

    #[test]
    fn division_stretches_the_recurrence() {
        let fast = model(
            "decl a: ubit<32>[16];
             decl b: ubit<32>[16];
             for (let i: ubit<8> = 0..16) {
               b[i] := a[i] + 1;
             }",
        );
        let slow = model(
            "decl a: ubit<32>[16];
             decl b: ubit<32>[16];
             for (let i: ubit<8> = 0..16) {
               b[i] := b[i] / 3;
             }",
        );
        assert!(slow.cycles > fast.cycles, "{slow:?} vs {fast:?}");
    }

    #[test]
    fn outer_loops_multiply() {
        let single = model(
            "decl a: ubit<32>[8];
             for (let i: ubit<8> = 0..8) { a[i] := 1; }",
        );
        let nested = model(
            "decl a: ubit<32>[8];
             for (let o: ubit<8> = 0..4) {
               for (let i: ubit<8> = 0..8) { a[i] := 1; }
             }",
        );
        assert!(
            nested.cycles > 3 * single.cycles,
            "{nested:?} vs {single:?}"
        );
    }

    #[test]
    fn memories_are_priced_like_the_backend() {
        let report = model("decl big: ubit<32>[64][64]; big[0][0] := 1;");
        assert!(report.area.brams > 0);
    }

    #[test]
    fn while_is_rejected() {
        let err = estimate_source(
            "let x: ubit<32> = 0;
             ---
             while (x < 5) { x := x + 1; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("trip counts"), "{err}");
    }

    #[test]
    fn predicated_triangular_loops_model() {
        let report = model(
            "decl l: ubit<32>[8][8];
             decl b: ubit<32>[8];
             decl x: ubit<32>[8];
             let acc: ubit<32> = 0;
             ---
             for (let i: ubit<8> = 0..8) {
               acc := b[i];
               ---
               for (let j: ubit<8> = 0..8) {
                 if (j < i) {
                   let t: ubit<32> = l[i][j] * x[j];
                   ---
                   acc := acc - t;
                 }
               }
               ---
               let lii: ubit<32> = l[i][i];
               ---
               x[i] := acc / lii;
             }",
        );
        assert!(report.cycles > 0);
        assert!(report.area.luts > 0);
    }
}
