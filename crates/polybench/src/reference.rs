//! Reference semantics for the PolyBench kernels.
//!
//! Pure-Rust implementations operating on flat row-major `u64` arrays with
//! 32-bit wrapping integer arithmetic — exactly the semantics of the
//! simulator's primitives (including the division-by-zero and integer
//! square-root conventions), so a compiled kernel's final memory state must
//! match these functions bit-for-bit.

/// 32-bit mask.
pub fn m32(x: u64) -> u64 {
    x & 0xffff_ffff
}

/// Wrapping 32-bit addition.
pub fn add(a: u64, b: u64) -> u64 {
    m32(a.wrapping_add(b))
}

/// Wrapping 32-bit subtraction.
pub fn sub(a: u64, b: u64) -> u64 {
    m32(a.wrapping_sub(b))
}

/// Wrapping 32-bit multiplication.
pub fn mul(a: u64, b: u64) -> u64 {
    m32(a.wrapping_mul(b))
}

/// Division matching `std_div_pipe`: division by zero yields all-ones.
pub fn div(a: u64, b: u64) -> u64 {
    a.checked_div(b).map_or(0xffff_ffff, m32)
}

/// Remainder matching `std_div_pipe`: modulo zero yields the dividend.
pub fn rem(a: u64, b: u64) -> u64 {
    a.checked_rem(b).map_or(a, m32)
}

/// Integer square root matching `std_sqrt`.
pub fn sqrt(v: u64) -> u64 {
    calyx_sim_isqrt(v)
}

// A local copy of the simulator's isqrt to avoid a dependency cycle; the
// integration tests assert the two agree.
fn calyx_sim_isqrt(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut x = (v as f64).sqrt() as u64;
    while x.saturating_mul(x) > v {
        x -= 1;
    }
    while (x + 1).saturating_mul(x + 1) <= v {
        x += 1;
    }
    x
}

/// Row-major index helper for 2-D arrays.
pub fn ix(n: usize, i: usize, j: usize) -> usize {
    i * n + j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_behaviour() {
        assert_eq!(add(0xffff_ffff, 1), 0);
        assert_eq!(sub(0, 1), 0xffff_ffff);
        assert_eq!(mul(0x10000, 0x10000), 0);
    }

    #[test]
    fn division_conventions() {
        assert_eq!(div(10, 3), 3);
        assert_eq!(div(10, 0), 0xffff_ffff);
        assert_eq!(rem(10, 3), 1);
        assert_eq!(rem(10, 0), 10);
    }

    #[test]
    fn isqrt_matches_floor() {
        for v in [0u64, 1, 2, 3, 4, 15, 16, 17, 143, 144, 145] {
            let r = sqrt(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v);
        }
    }
}
