//! Dahlia sources for the 19 PolyBench linear-algebra kernels (paper §7.2).
//!
//! Integer (32-bit wrapping) versions of the PolyBench/C kernels. Scalar
//! coefficients use shifts (`alpha = 2`, `beta = 3` where applicable) so a
//! coefficient does not cost an extra multiplier. Triangular loops use
//! static bounds with predication (`if (k < i)`), which both the Calyx
//! backend and the HLS model schedule.
//!
//! For the unrolled variants (`unroll > 1`), arrays touched inside the
//! unrolled loop are banked by the unroll factor, reads shared by all lanes
//! are hoisted into scalars, and arrays needing a second, differently-
//! banked access pattern are provided as *input copies* (`a2` mirrors `a`),
//! the standard trick in HLS evaluations when memory views are unavailable.
//! Ten of the nineteen kernels support unrolling this way; the paper
//! reports eleven — the difference (gemver) needs Dahlia's memory views,
//! which this reproduction omits (see DESIGN.md).

/// Number of spatial lanes; loop variables are 8-bit counters, so `n` must
/// stay below 256 (PolyBench mini/small sizes).
fn hdr(var: &str, n: u64) -> String {
    format!("for (let {var}: ubit<8> = 0..{n})")
}

fn hdr_from(var: &str, lo: u64, n: u64) -> String {
    format!("for (let {var}: ubit<8> = {lo}..{n})")
}

fn hdru(var: &str, n: u64, u: u64) -> String {
    format!("for (let {var}: ubit<8> = 0..{n}) unroll {u}")
}

/// `gemm`: C = 3·C + A·B.
pub fn gemm(n: u64, u: u64) -> String {
    if u <= 1 {
        format!(
            "decl a: ubit<32>[{n}][{n}];
             decl b: ubit<32>[{n}][{n}];
             decl c: ubit<32>[{n}][{n}];
             {i} {{
               {j} {{
                 c[i][j] := c[i][j] * 3;
                 ---
                 {k} {{
                   let t: ubit<32> = a[i][k] * b[k][j];
                   ---
                   c[i][j] := c[i][j] + t;
                 }}
               }}
             }}",
            i = hdr("i", n),
            j = hdr("j", n),
            k = hdr("k", n)
        )
    } else {
        format!(
            "decl a: ubit<32>[{n} bank {u}][{n}];
             decl b: ubit<32>[{n}][{n}];
             decl c: ubit<32>[{n} bank {u}][{n}];
             {j0} {{
               {iu} {{
                 c[i][j] := c[i][j] * 3;
               }}
             }}
             ---
             {k} {{
               {j} {{
                 let bv: ubit<32> = b[k][j];
                 ---
                 {iu2} {{
                   let t: ubit<32> = a[i][k] * bv;
                   ---
                   c[i][j] := c[i][j] + t;
                 }}
               }}
             }}",
            j0 = hdr("j", n),
            iu = hdru("i", n, u),
            k = hdr("k", n),
            j = hdr("j", n),
            iu2 = hdru("i", n, u),
        )
    }
}

/// `2mm`: tmp = A·B; D += tmp·C.
pub fn two_mm(n: u64, u: u64) -> String {
    if u <= 1 {
        format!(
            "decl a: ubit<32>[{n}][{n}];
             decl b: ubit<32>[{n}][{n}];
             decl c: ubit<32>[{n}][{n}];
             decl d: ubit<32>[{n}][{n}];
             decl tmp: ubit<32>[{n}][{n}];
             {i} {{ {j} {{
               tmp[i][j] := 0;
               ---
               {k} {{
                 let t: ubit<32> = a[i][k] * b[k][j];
                 ---
                 tmp[i][j] := tmp[i][j] + t;
               }}
             }} }}
             ---
             {i2} {{ {j2} {{
               {k2} {{
                 let t2: ubit<32> = tmp[i2][k2] * c[k2][j2];
                 ---
                 d[i2][j2] := d[i2][j2] + t2;
               }}
             }} }}",
            i = hdr("i", n),
            j = hdr("j", n),
            k = hdr("k", n),
            i2 = hdr("i2", n),
            j2 = hdr("j2", n),
            k2 = hdr("k2", n)
        )
    } else {
        format!(
            "decl a: ubit<32>[{n} bank {u}][{n}];
             decl b: ubit<32>[{n}][{n}];
             decl c: ubit<32>[{n}][{n}];
             decl d: ubit<32>[{n} bank {u}][{n}];
             decl tmp: ubit<32>[{n} bank {u}][{n}];
             {j0} {{ {iu0} {{ tmp[i][j] := 0; }} }}
             ---
             {k} {{ {j} {{
               let bv: ubit<32> = b[k][j];
               ---
               {iu} {{
                 let t: ubit<32> = a[i][k] * bv;
                 ---
                 tmp[i][j] := tmp[i][j] + t;
               }}
             }} }}
             ---
             {k2} {{ {j2} {{
               let cv: ubit<32> = c[k2][j2];
               ---
               {iu2} {{
                 let t2: ubit<32> = tmp[i][k2] * cv;
                 ---
                 d[i][j2] := d[i][j2] + t2;
               }}
             }} }}",
            j0 = hdr("j", n),
            iu0 = hdru("i", n, u),
            k = hdr("k", n),
            j = hdr("j", n),
            iu = hdru("i", n, u),
            k2 = hdr("k2", n),
            j2 = hdr("j2", n),
            iu2 = hdru("i", n, u),
        )
    }
}

/// `3mm`: E = A·B; F = C·D; G = E·F.
pub fn three_mm(n: u64, u: u64) -> String {
    if u <= 1 {
        format!(
            "decl a: ubit<32>[{n}][{n}];
             decl b: ubit<32>[{n}][{n}];
             decl c: ubit<32>[{n}][{n}];
             decl d: ubit<32>[{n}][{n}];
             decl e: ubit<32>[{n}][{n}];
             decl f: ubit<32>[{n}][{n}];
             decl g: ubit<32>[{n}][{n}];
             {i} {{ {j} {{ {k} {{
               let t: ubit<32> = a[i][k] * b[k][j];
               ---
               e[i][j] := e[i][j] + t;
             }} }} }}
             ---
             {i2} {{ {j2} {{ {k2} {{
               let t2: ubit<32> = c[i2][k2] * d[k2][j2];
               ---
               f[i2][j2] := f[i2][j2] + t2;
             }} }} }}
             ---
             {i3} {{ {j3} {{ {k3} {{
               let t3: ubit<32> = e[i3][k3] * f[k3][j3];
               ---
               g[i3][j3] := g[i3][j3] + t3;
             }} }} }}",
            i = hdr("i", n),
            j = hdr("j", n),
            k = hdr("k", n),
            i2 = hdr("i2", n),
            j2 = hdr("j2", n),
            k2 = hdr("k2", n),
            i3 = hdr("i3", n),
            j3 = hdr("j3", n),
            k3 = hdr("k3", n)
        )
    } else {
        // Phase 3 reads F row-wise while phase 2 writes it lane-banked; a
        // constant-index drain copies F into the unbanked F2 (memory views
        // in real Dahlia; an explicit copy here).
        let mut drain = String::new();
        for r in 0..n {
            for cc in 0..n {
                drain.push_str(&format!("f2[{r}][{cc}] := f[{r}][{cc}];\n---\n"));
            }
        }
        let drain = drain.trim_end_matches("---\n").to_string();
        format!(
            "decl a: ubit<32>[{n} bank {u}][{n}];
             decl b: ubit<32>[{n}][{n}];
             decl c: ubit<32>[{n} bank {u}][{n}];
             decl d: ubit<32>[{n}][{n}];
             decl e: ubit<32>[{n} bank {u}][{n}];
             decl f: ubit<32>[{n} bank {u}][{n}];
             decl f2: ubit<32>[{n}][{n}];
             decl g: ubit<32>[{n} bank {u}][{n}];
             {k} {{ {j} {{
               let bv: ubit<32> = b[k][j];
               ---
               {iu} {{
                 let t: ubit<32> = a[i][k] * bv;
                 ---
                 e[i][j] := e[i][j] + t;
               }}
             }} }}
             ---
             {k2} {{ {j2} {{
               let dv: ubit<32> = d[k2][j2];
               ---
               {iu2} {{
                 let t2: ubit<32> = c[i][k2] * dv;
                 ---
                 f[i][j2] := f[i][j2] + t2;
               }}
             }} }}
             ---
             {drain}
             ---
             {k3} {{ {j3} {{
               let fv: ubit<32> = f2[k3][j3];
               ---
               {iu3} {{
                 let t3: ubit<32> = e[i][k3] * fv;
                 ---
                 g[i][j3] := g[i][j3] + t3;
               }}
             }} }}",
            k = hdr("k", n),
            j = hdr("j", n),
            iu = hdru("i", n, u),
            k2 = hdr("k2", n),
            j2 = hdr("j2", n),
            iu2 = hdru("i", n, u),
            k3 = hdr("k3", n),
            j3 = hdr("j3", n),
            iu3 = hdru("i", n, u),
        )
    }
}

/// `atax`: y = Aᵀ(A·x).
pub fn atax(n: u64, u: u64) -> String {
    if u <= 1 {
        format!(
            "decl a: ubit<32>[{n}][{n}];
             decl x: ubit<32>[{n}];
             decl y: ubit<32>[{n}];
             decl tmp: ubit<32>[{n}];
             {i} {{
               tmp[i] := 0;
               ---
               {j} {{
                 let t: ubit<32> = a[i][j] * x[j];
                 ---
                 tmp[i] := tmp[i] + t;
               }}
             }}
             ---
             {i2} {{ {j2} {{
               let t2: ubit<32> = a[i2][j2] * tmp[i2];
               ---
               y[j2] := y[j2] + t2;
             }} }}",
            i = hdr("i", n),
            j = hdr("j", n),
            i2 = hdr("i2", n),
            j2 = hdr("j2", n)
        )
    } else {
        format!(
            "decl a: ubit<32>[{n}][{n}];
             decl a2: ubit<32>[{n}][{n} bank {u}];
             decl x: ubit<32>[{n}];
             decl y: ubit<32>[{n} bank {u}];
             decl tmp: ubit<32>[{n}];
             {i} {{
               tmp[i] := 0;
               ---
               {j} {{
                 let t: ubit<32> = a[i][j] * x[j];
                 ---
                 tmp[i] := tmp[i] + t;
               }}
             }}
             ---
             {i2} {{
               let tv: ubit<32> = tmp[i2];
               ---
               {ju} {{
                 let t2: ubit<32> = a2[i2][j] * tv;
                 ---
                 y[j] := y[j] + t2;
               }}
             }}",
            i = hdr("i", n),
            j = hdr("j", n),
            i2 = hdr("i2", n),
            ju = hdru("j", n, u),
        )
    }
}

/// `bicg`: s = Aᵀ·r; q = A·p.
pub fn bicg(n: u64, u: u64) -> String {
    if u <= 1 {
        format!(
            "decl a: ubit<32>[{n}][{n}];
             decl r: ubit<32>[{n}];
             decl s: ubit<32>[{n}];
             decl p: ubit<32>[{n}];
             decl q: ubit<32>[{n}];
             {i} {{ {j} {{
               let t: ubit<32> = r[i] * a[i][j];
               ---
               s[j] := s[j] + t;
             }} }}
             ---
             {i2} {{
               q[i2] := 0;
               ---
               {j2} {{
                 let t2: ubit<32> = a[i2][j2] * p[j2];
                 ---
                 q[i2] := q[i2] + t2;
               }}
             }}",
            i = hdr("i", n),
            j = hdr("j", n),
            i2 = hdr("i2", n),
            j2 = hdr("j2", n)
        )
    } else {
        format!(
            "decl a: ubit<32>[{n}][{n} bank {u}];
             decl a2: ubit<32>[{n} bank {u}][{n}];
             decl r: ubit<32>[{n}];
             decl s: ubit<32>[{n} bank {u}];
             decl p: ubit<32>[{n}];
             decl q: ubit<32>[{n} bank {u}];
             {i} {{
               let rv: ubit<32> = r[i];
               ---
               {ju} {{
                 let t: ubit<32> = rv * a[i][j];
                 ---
                 s[j] := s[j] + t;
               }}
             }}
             ---
             {j20} {{ {iu0} {{ q[i] := 0; }} }}
             ---
             {j2} {{
               let pv: ubit<32> = p[j2];
               ---
               {iu} {{
                 let t2: ubit<32> = a2[i][j2] * pv;
                 ---
                 q[i] := q[i] + t2;
               }}
             }}",
            i = hdr("i", n),
            ju = hdru("j", n, u),
            j20 = hdr("j2", n),
            iu0 = hdru("i", n, u),
            j2 = hdr("j2", n),
            iu = hdru("i", n, u),
        )
    }
}

/// `doitgen`: per (r, q) slice, `sum[p] = Σ_s A[r][q][s]·C4[s][p]`, then
/// the slice is overwritten with `sum`.
pub fn doitgen(n: u64, u: u64) -> String {
    if u <= 1 {
        format!(
            "decl xa: ubit<32>[{n}][{n}][{n}];
             decl c4: ubit<32>[{n}][{n}];
             decl sum: ubit<32>[{n}];
             {r} {{ {q} {{
               {p} {{
                 sum[p] := 0;
                 ---
                 {s} {{
                   let t: ubit<32> = xa[rr][qq][s] * c4[s][p];
                   ---
                   sum[p] := sum[p] + t;
                 }}
               }}
               ---
               {p2} {{
                 xa[rr][qq][p2] := sum[p2];
               }}
             }} }}",
            r = hdr("rr", n),
            q = hdr("qq", n),
            p = hdr("p", n),
            s = hdr("s", n),
            p2 = hdr("p2", n)
        )
    } else {
        format!(
            "decl xain: ubit<32>[{n}][{n}][{n}];
             decl xa: ubit<32>[{n}][{n}][{n} bank {u}];
             decl c4: ubit<32>[{n}][{n} bank {u}];
             decl sum: ubit<32>[{n} bank {u}];
             {r} {{ {q} {{
               {pu0} {{ sum[p] := 0; }}
               ---
               {s} {{
                 let av: ubit<32> = xain[rr][qq][s];
                 ---
                 {pu} {{
                   let t: ubit<32> = av * c4[s][p];
                   ---
                   sum[p] := sum[p] + t;
                 }}
               }}
               ---
               {pu2} {{ xa[rr][qq][p] := sum[p]; }}
             }} }}",
            r = hdr("rr", n),
            q = hdr("qq", n),
            pu0 = hdru("p", n, u),
            s = hdr("s", n),
            pu = hdru("p", n, u),
            pu2 = hdru("p", n, u),
        )
    }
}

/// `mvt`: x1 += A·y1; x2 += Aᵀ·y2.
pub fn mvt(n: u64, u: u64) -> String {
    if u <= 1 {
        format!(
            "decl a: ubit<32>[{n}][{n}];
             decl x1: ubit<32>[{n}];
             decl x2: ubit<32>[{n}];
             decl y1: ubit<32>[{n}];
             decl y2: ubit<32>[{n}];
             {i} {{ {j} {{
               let t: ubit<32> = a[i][j] * y1[j];
               ---
               x1[i] := x1[i] + t;
             }} }}
             ---
             {i2} {{ {j2} {{
               let t2: ubit<32> = a[j2][i2] * y2[j2];
               ---
               x2[i2] := x2[i2] + t2;
             }} }}",
            i = hdr("i", n),
            j = hdr("j", n),
            i2 = hdr("i2", n),
            j2 = hdr("j2", n)
        )
    } else {
        format!(
            "decl a: ubit<32>[{n} bank {u}][{n}];
             decl a2: ubit<32>[{n}][{n} bank {u}];
             decl x1: ubit<32>[{n} bank {u}];
             decl x2: ubit<32>[{n} bank {u}];
             decl y1: ubit<32>[{n}];
             decl y2: ubit<32>[{n}];
             {j} {{
               let yv: ubit<32> = y1[j];
               ---
               {iu} {{
                 let t: ubit<32> = a[i][j] * yv;
                 ---
                 x1[i] := x1[i] + t;
               }}
             }}
             ---
             {j2} {{
               let y2v: ubit<32> = y2[j2];
               ---
               {iu2} {{
                 let t2: ubit<32> = a2[j2][i] * y2v;
                 ---
                 x2[i] := x2[i] + t2;
               }}
             }}",
            j = hdr("j", n),
            iu = hdru("i", n, u),
            j2 = hdr("j2", n),
            iu2 = hdru("i", n, u),
        )
    }
}

/// `gemver`: A += u1·v1ᵀ + u2·v2ᵀ; x += 2·Aᵀ·y; x += z; w += 2·A·x.
/// (Coefficients are powers of two, applied with shifts.)
pub fn gemver(n: u64, _u: u64) -> String {
    format!(
        "decl a: ubit<32>[{n}][{n}];
         decl u1: ubit<32>[{n}];
         decl v1: ubit<32>[{n}];
         decl u2: ubit<32>[{n}];
         decl v2: ubit<32>[{n}];
         decl x: ubit<32>[{n}];
         decl y: ubit<32>[{n}];
         decl z: ubit<32>[{n}];
         decl w: ubit<32>[{n}];
         {i} {{ {j} {{
           let t1: ubit<32> = u1[i] * v1[j];
           ---
           let t2: ubit<32> = u2[i] * v2[j];
           ---
           a[i][j] := a[i][j] + t1 + t2;
         }} }}
         ---
         {i2} {{ {j2} {{
           let t3: ubit<32> = a[j2][i2] * y[j2];
           ---
           x[i2] := x[i2] + (t3 << 1);
         }} }}
         ---
         {i3} {{
           x[i3] := x[i3] + z[i3];
         }}
         ---
         {i4} {{ {j4} {{
           let t5: ubit<32> = a[i4][j4] * x[j4];
           ---
           w[i4] := w[i4] + (t5 << 1);
         }} }}",
        i = hdr("i", n),
        j = hdr("j", n),
        i2 = hdr("i2", n),
        j2 = hdr("j2", n),
        i3 = hdr("i3", n),
        i4 = hdr("i4", n),
        j4 = hdr("j4", n)
    )
}

/// `gesummv`: y = 2·A·x + 3·B·x (shift-and-add coefficients).
pub fn gesummv(n: u64, u: u64) -> String {
    if u <= 1 {
        format!(
            "decl a: ubit<32>[{n}][{n}];
             decl b: ubit<32>[{n}][{n}];
             decl x: ubit<32>[{n}];
             decl y: ubit<32>[{n}];
             decl tmp: ubit<32>[{n}];
             {i} {{
               tmp[i] := 0;
               y[i] := 0;
               ---
               {j} {{
                 let t: ubit<32> = a[i][j] * x[j];
                 ---
                 tmp[i] := tmp[i] + t;
                 ---
                 let t2: ubit<32> = b[i][j] * x[j];
                 ---
                 y[i] := y[i] + t2;
               }}
               ---
               y[i] := (tmp[i] << 1) + ((y[i] << 1) + y[i]);
             }}",
            i = hdr("i", n),
            j = hdr("j", n)
        )
    } else {
        format!(
            "decl a: ubit<32>[{n} bank {u}][{n}];
             decl b: ubit<32>[{n} bank {u}][{n}];
             decl x: ubit<32>[{n}];
             decl y: ubit<32>[{n} bank {u}];
             decl tmp: ubit<32>[{n} bank {u}];
             {i0} {{ {iu0} {{
               tmp[i] := 0;
               y[i] := 0;
             }} }}
             ---
             {j} {{
               let xv: ubit<32> = x[j];
               ---
               {iu} {{
                 let t: ubit<32> = a[i][j] * xv;
                 ---
                 tmp[i] := tmp[i] + t;
                 ---
                 let t2: ubit<32> = b[i][j] * xv;
                 ---
                 y[i] := y[i] + t2;
               }}
             }}
             ---
             {i2} {{ {iu2} {{
               y[i] := (tmp[i] << 1) + ((y[i] << 1) + y[i]);
             }} }}",
            i0 = "if (1 == 1)",
            iu0 = hdru("i", n, u),
            j = hdr("j", n),
            iu = hdru("i", n, u),
            i2 = "if (1 == 1)",
            iu2 = hdru("i", n, u),
        )
    }
}

/// `symm`: C += B·A-symmetric interactions (integer PolyBench symm with
/// alpha = beta = 1).
pub fn symm(n: u64, _u: u64) -> String {
    format!(
        "decl a: ubit<32>[{n}][{n}];
         decl b: ubit<32>[{n}][{n}];
         decl c: ubit<32>[{n}][{n}];
         let t2v: ubit<32> = 0;
         ---
         {i} {{ {j} {{
           t2v := 0;
           ---
           let bij: ubit<32> = b[i][j];
           ---
           {k} {{
             if (k < i) {{
               let p1: ubit<32> = bij * a[i][k];
               ---
               c[k][j] := c[k][j] + p1;
               ---
               let p2: ubit<32> = b[k][j] * a[i][k];
               ---
               t2v := t2v + p2;
             }}
           }}
           ---
           let paa: ubit<32> = bij * a[i][i];
           ---
           c[i][j] := c[i][j] + paa + t2v;
         }} }}",
        i = hdr("i", n),
        j = hdr("j", n),
        k = hdr("k", n)
    )
}

/// `syrk` (full-matrix variant): C += A·Aᵀ.
pub fn syrk(n: u64, u: u64) -> String {
    if u <= 1 {
        format!(
            "decl a: ubit<32>[{n}][{n}];
             decl c: ubit<32>[{n}][{n}];
             {i} {{ {j} {{ {k} {{
               let av: ubit<32> = a[j][k];
               ---
               let t: ubit<32> = a[i][k] * av;
               ---
               c[i][j] := c[i][j] + t;
             }} }} }}",
            i = hdr("i", n),
            j = hdr("j", n),
            k = hdr("k", n)
        )
    } else {
        format!(
            "decl a: ubit<32>[{n} bank {u}][{n}];
             decl a2: ubit<32>[{n}][{n}];
             decl c: ubit<32>[{n} bank {u}][{n}];
             {k} {{ {j} {{
               let av: ubit<32> = a2[j][k];
               ---
               {iu} {{
                 let t: ubit<32> = a[i][k] * av;
                 ---
                 c[i][j] := c[i][j] + t;
               }}
             }} }}",
            k = hdr("k", n),
            j = hdr("j", n),
            iu = hdru("i", n, u),
        )
    }
}

/// `syr2k` (full-matrix variant): C += A·Bᵀ + B·Aᵀ.
pub fn syr2k(n: u64, u: u64) -> String {
    if u <= 1 {
        format!(
            "decl a: ubit<32>[{n}][{n}];
             decl b: ubit<32>[{n}][{n}];
             decl c: ubit<32>[{n}][{n}];
             {i} {{ {j} {{ {k} {{
               let a2v: ubit<32> = a[j][k];
               ---
               let b2v: ubit<32> = b[j][k];
               ---
               let t1: ubit<32> = a[i][k] * b2v;
               ---
               let t2: ubit<32> = b[i][k] * a2v;
               ---
               c[i][j] := c[i][j] + t1 + t2;
             }} }} }}",
            i = hdr("i", n),
            j = hdr("j", n),
            k = hdr("k", n)
        )
    } else {
        format!(
            "decl a: ubit<32>[{n} bank {u}][{n}];
             decl a2: ubit<32>[{n}][{n}];
             decl b: ubit<32>[{n} bank {u}][{n}];
             decl b2: ubit<32>[{n}][{n}];
             decl c: ubit<32>[{n} bank {u}][{n}];
             {k} {{ {j} {{
               let a2v: ubit<32> = a2[j][k];
               ---
               let b2v: ubit<32> = b2[j][k];
               ---
               {iu} {{
                 let t1: ubit<32> = a[i][k] * b2v;
                 ---
                 let t2: ubit<32> = b[i][k] * a2v;
                 ---
                 c[i][j] := c[i][j] + t1 + t2;
               }}
             }} }}",
            k = hdr("k", n),
            j = hdr("j", n),
            iu = hdru("i", n, u),
        )
    }
}

/// `trmm`: B += (strictly-lower A)ᵀ interactions (PolyBench trmm, alpha=1).
pub fn trmm(n: u64, _u: u64) -> String {
    format!(
        "decl a: ubit<32>[{n}][{n}];
         decl b: ubit<32>[{n}][{n}];
         {i} {{ {j} {{ {k} {{
           if (k > i) {{
             let bv: ubit<32> = b[k][j];
             ---
             let t: ubit<32> = a[k][i] * bv;
             ---
             b[i][j] := b[i][j] + t;
           }}
         }} }} }}",
        i = hdr("i", n),
        j = hdr("j", n),
        k = hdr("k", n)
    )
}

/// `trisolv`: forward substitution x = L⁻¹·b.
pub fn trisolv(n: u64, _u: u64) -> String {
    format!(
        "decl l: ubit<32>[{n}][{n}];
         decl b: ubit<32>[{n}];
         decl x: ubit<32>[{n}];
         let acc: ubit<32> = 0;
         ---
         {i} {{
           acc := b[i];
           ---
           {j} {{
             if (j < i) {{
               let t: ubit<32> = l[i][j] * x[j];
               ---
               acc := acc - t;
             }}
           }}
           ---
           let lii: ubit<32> = l[i][i];
           ---
           x[i] := acc / lii;
         }}",
        i = hdr("i", n),
        j = hdr("j", n)
    )
}

/// `cholesky`: in-place integer Cholesky-style factorization.
pub fn cholesky(n: u64, _u: u64) -> String {
    format!(
        "decl a: ubit<32>[{n}][{n}];
         let acc: ubit<32> = 0;
         ---
         {i} {{ {j} {{
           if (j <= i) {{
             acc := a[i][j];
             ---
             {k} {{
               if (k < j) {{
                 let ajk: ubit<32> = a[j][k];
                 ---
                 let t: ubit<32> = a[i][k] * ajk;
                 ---
                 acc := acc - t;
               }}
             }}
             ---
             if (j == i) {{
               a[i][j] := sqrt(acc);
             }} else {{
               let ajj: ubit<32> = a[j][j];
               ---
               a[i][j] := acc / ajj;
             }}
           }}
         }} }}",
        i = hdr("i", n),
        j = hdr("j", n),
        k = hdr("k", n)
    )
}

/// `lu`: in-place LU decomposition.
pub fn lu(n: u64, _u: u64) -> String {
    format!(
        "decl a: ubit<32>[{n}][{n}];
         let acc: ubit<32> = 0;
         ---
         {i} {{
           {j} {{
             if (j < i) {{
               acc := a[i][j];
               ---
               {k} {{
                 if (k < j) {{
                   let akj: ubit<32> = a[k][j];
                   ---
                   let t: ubit<32> = a[i][k] * akj;
                   ---
                   acc := acc - t;
                 }}
               }}
               ---
               let ajj: ubit<32> = a[j][j];
               ---
               a[i][j] := acc / ajj;
             }}
           }}
           ---
           {j2} {{
             if (j2 >= i) {{
               acc := a[i][j2];
               ---
               {k2} {{
                 if (k2 < i) {{
                   let akj2: ubit<32> = a[k2][j2];
                   ---
                   let t2: ubit<32> = a[i][k2] * akj2;
                   ---
                   acc := acc - t2;
                 }}
               }}
               ---
               a[i][j2] := acc;
             }}
           }}
         }}",
        i = hdr("i", n),
        j = hdr("j", n),
        k = hdr("k", n),
        j2 = hdr("j2", n),
        k2 = hdr("k2", n)
    )
}

/// `ludcmp`: LU factorization plus forward/backward substitution.
pub fn ludcmp(n: u64, _u: u64) -> String {
    let lu_part = lu(n, 1);
    // Strip lu's decl (shared) and its scalar intro.
    let lu_body = lu_part
        .split_once("---")
        .map(|x| x.1)
        .expect("lu has a body")
        .to_string();
    format!(
        "decl a: ubit<32>[{n}][{n}];
         decl b: ubit<32>[{n}];
         decl x: ubit<32>[{n}];
         decl y: ubit<32>[{n}];
         let acc: ubit<32> = 0;
         ---
         {lu_body}
         ---
         {i3} {{
           acc := b[i3];
           ---
           {j3} {{
             if (j3 < i3) {{
               let t3: ubit<32> = a[i3][j3] * y[j3];
               ---
               acc := acc - t3;
             }}
           }}
           ---
           y[i3] := acc;
         }}
         ---
         {i4} {{
           let ri: ubit<8> = {nm1} - i4;
           ---
           acc := y[ri];
           ---
           {j4} {{
             if (j4 > ri) {{
               let t4: ubit<32> = a[ri][j4] * x[j4];
               ---
               acc := acc - t4;
             }}
           }}
           ---
           let aii: ubit<32> = a[ri][ri];
           ---
           x[ri] := acc / aii;
         }}",
        lu_body = lu_body,
        i3 = hdr("i3", n),
        j3 = hdr("j3", n),
        i4 = hdr("i4", n),
        j4 = hdr("j4", n),
        nm1 = n - 1
    )
}

/// `durbin`: Toeplitz system solver (integer adaptation).
pub fn durbin(n: u64, _u: u64) -> String {
    format!(
        "decl r: ubit<32>[{n}];
         decl y: ubit<32>[{n}];
         decl z: ubit<32>[{n}];
         let alpha: ubit<32> = 0;
         let beta: ubit<32> = 1;
         let sum: ubit<32> = 0;
         ---
         let r0: ubit<32> = r[0];
         ---
         y[0] := 0 - r0;
         alpha := 0 - r0;
         ---
         {k} {{
           let aa: ubit<32> = alpha * alpha;
           ---
           let onema: ubit<32> = 1 - aa;
           ---
           let nb: ubit<32> = onema * beta;
           ---
           beta := nb;
           sum := 0;
           ---
           {i} {{
             if (i < k) {{
               let t: ubit<32> = r[k - i - 1] * y[i];
               ---
               sum := sum + t;
             }}
           }}
           ---
           let rk: ubit<32> = r[k];
           ---
           let num: ubit<32> = 0 - (rk + sum);
           ---
           let q: ubit<32> = num / beta;
           ---
           alpha := q;
           ---
           {i2} {{
             if (i2 < k) {{
               let ykk: ubit<32> = y[k - i2 - 1];
               ---
               let t2: ubit<32> = alpha * ykk;
               ---
               z[i2] := y[i2] + t2;
             }}
           }}
           ---
           {i3} {{
             if (i3 < k) {{
               y[i3] := z[i3];
             }}
           }}
           ---
           y[k] := alpha;
         }}",
        k = hdr_from("k", 1, n),
        i = hdr("i", n),
        i2 = hdr("i2", n),
        i3 = hdr("i3", n)
    )
}

/// `gramschmidt`: integer QR-style orthogonalization.
pub fn gramschmidt(n: u64, _u: u64) -> String {
    format!(
        "decl a: ubit<32>[{n}][{n}];
         decl q: ubit<32>[{n}][{n}];
         decl r: ubit<32>[{n}][{n}];
         let nrm: ubit<32> = 0;
         let rsum: ubit<32> = 0;
         ---
         {k} {{
           nrm := 0;
           ---
           {i} {{
             let av: ubit<32> = a[i][k];
             ---
             let t: ubit<32> = av * av;
             ---
             nrm := nrm + t;
           }}
           ---
           let rkk: ubit<32> = sqrt(nrm);
           ---
           r[k][k] := rkk;
           ---
           {i2} {{
             q[i2][k] := a[i2][k] / rkk;
           }}
           ---
           {j} {{
             if (j > k) {{
               rsum := 0;
               ---
               {i3} {{
                 let t2: ubit<32> = q[i3][k] * a[i3][j];
                 ---
                 rsum := rsum + t2;
               }}
               ---
               r[k][j] := rsum;
               ---
               {i4} {{
                 let qv: ubit<32> = q[i4][k];
                 ---
                 let t3: ubit<32> = qv * rsum;
                 ---
                 a[i4][j] := a[i4][j] - t3;
               }}
             }}
           }}
         }}",
        k = hdr("k", n),
        i = hdr("i", n),
        i2 = hdr("i2", n),
        j = hdr("j", n),
        i3 = hdr("i3", n),
        i4 = hdr("i4", n)
    )
}
