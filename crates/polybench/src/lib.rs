//! The PolyBench linear-algebra suite for the Calyx evaluation (paper §7.2).
//!
//! All 19 kernels from PolyBench's linear-algebra category, written in the
//! Dahlia dialect ([`kernels`]) with bit-exact Rust reference semantics
//! ([`mod@reference`] helpers + per-kernel functions here). Ten kernels also
//! provide *unrolled* variants with banked memories (the paper reports
//! eleven; see `kernels` docs for the gap).
//!
//! The [`simulate`] harness compiles a kernel through the Dahlia→Calyx
//! pipeline, lowers it with a chosen optimization configuration, runs the
//! cycle-accurate simulator with deterministic input data, and checks every
//! output memory against the reference — this is the correctness backbone
//! of the whole repository.

pub mod kernels;
pub mod reference;

use calyx_core::errors::{CalyxResult, Error};
use calyx_core::ir::Context;
use calyx_core::passes;
use calyx_dahlia::ast::Program;
use calyx_dahlia::backend::{join_banks, memory_banks, split_banks};
use calyx_sim::rtl::Simulator;
use reference::*;
use std::collections::BTreeMap;

/// A kernel in the registry.
#[derive(Clone, Copy)]
pub struct KernelDef {
    /// Canonical PolyBench name.
    pub name: &'static str,
    /// The abbreviation used on the paper's figure axes.
    pub abbrev: &'static str,
    /// Whether an unrolled variant exists.
    pub unrollable: bool,
    /// Dahlia source generator.
    pub source: fn(n: u64, unroll: u64) -> String,
    /// Reference semantics over logical arrays.
    pub reference: fn(n: usize, mems: &mut BTreeMap<String, Vec<u64>>),
    /// Logical arrays whose final contents are checked.
    pub outputs: &'static [&'static str],
}

impl std::fmt::Debug for KernelDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelDef")
            .field("name", &self.name)
            .finish()
    }
}

/// Map a physical memory name to its logical array (input copies like `a2`
/// carry the same data as `a`).
pub fn logical_of(physical: &str) -> String {
    match physical {
        "a2" | "a1" => "a".to_string(),
        "b2" => "b".to_string(),
        "f2" => "f".to_string(),
        "xain" => "xa".to_string(),
        other => other.to_string(),
    }
}

/// The 19-kernel registry, in the paper's figure order.
pub const KERNELS: &[KernelDef] = &[
    KernelDef {
        name: "2mm",
        abbrev: "2mm",
        unrollable: true,
        source: kernels::two_mm,
        reference: ref_2mm,
        outputs: &["tmp", "d"],
    },
    KernelDef {
        name: "3mm",
        abbrev: "3mm",
        unrollable: true,
        source: kernels::three_mm,
        reference: ref_3mm,
        outputs: &["e", "f", "g"],
    },
    KernelDef {
        name: "atax",
        abbrev: "ata",
        unrollable: true,
        source: kernels::atax,
        reference: ref_atax,
        outputs: &["tmp", "y"],
    },
    KernelDef {
        name: "doitgen",
        abbrev: "dtg",
        unrollable: true,
        source: kernels::doitgen,
        reference: ref_doitgen,
        outputs: &["xa"],
    },
    KernelDef {
        name: "gemm",
        abbrev: "gmm",
        unrollable: true,
        source: kernels::gemm,
        reference: ref_gemm,
        outputs: &["c"],
    },
    KernelDef {
        name: "gemver",
        abbrev: "gmv",
        unrollable: false,
        source: kernels::gemver,
        reference: ref_gemver,
        outputs: &["a", "x", "w"],
    },
    KernelDef {
        name: "gesummv",
        abbrev: "gev",
        unrollable: true,
        source: kernels::gesummv,
        reference: ref_gesummv,
        outputs: &["y"],
    },
    KernelDef {
        name: "gramschmidt",
        abbrev: "gmt",
        unrollable: false,
        source: kernels::gramschmidt,
        reference: ref_gramschmidt,
        outputs: &["a", "q", "r"],
    },
    KernelDef {
        name: "mvt",
        abbrev: "mvt",
        unrollable: true,
        source: kernels::mvt,
        reference: ref_mvt,
        outputs: &["x1", "x2"],
    },
    KernelDef {
        name: "syr2k",
        abbrev: "s2k",
        unrollable: true,
        source: kernels::syr2k,
        reference: ref_syr2k,
        outputs: &["c"],
    },
    KernelDef {
        name: "syrk",
        abbrev: "sk",
        unrollable: true,
        source: kernels::syrk,
        reference: ref_syrk,
        outputs: &["c"],
    },
    KernelDef {
        name: "bicg",
        abbrev: "bcg",
        unrollable: true,
        source: kernels::bicg,
        reference: ref_bicg,
        outputs: &["s", "q"],
    },
    KernelDef {
        name: "cholesky",
        abbrev: "cky",
        unrollable: false,
        source: kernels::cholesky,
        reference: ref_cholesky,
        outputs: &["a"],
    },
    KernelDef {
        name: "durbin",
        abbrev: "dbn",
        unrollable: false,
        source: kernels::durbin,
        reference: ref_durbin,
        outputs: &["y"],
    },
    KernelDef {
        name: "lu",
        abbrev: "lu",
        unrollable: false,
        source: kernels::lu,
        reference: ref_lu,
        outputs: &["a"],
    },
    KernelDef {
        name: "ludcmp",
        abbrev: "lcp",
        unrollable: false,
        source: kernels::ludcmp,
        reference: ref_ludcmp,
        outputs: &["a", "y", "x"],
    },
    KernelDef {
        name: "symm",
        abbrev: "sym",
        unrollable: false,
        source: kernels::symm,
        reference: ref_symm,
        outputs: &["c"],
    },
    KernelDef {
        name: "trisolv",
        abbrev: "tsv",
        unrollable: false,
        source: kernels::trisolv,
        reference: ref_trisolv,
        outputs: &["x"],
    },
    KernelDef {
        name: "trmm",
        abbrev: "trm",
        unrollable: false,
        source: kernels::trmm,
        reference: ref_trmm,
        outputs: &["b"],
    },
];

/// Look up a kernel by name or abbreviation.
pub fn kernel(name: &str) -> Option<&'static KernelDef> {
    KERNELS.iter().find(|k| k.name == name || k.abbrev == name)
}

/// Deterministic input data for a logical array (seeded by kernel and array
/// name; small values keep divisors non-zero in the common case).
pub fn input_data(kernel: &str, logical: &str, len: usize) -> Vec<u64> {
    let mut seed: u64 = 0x9e37_79b9_7f4a_7c15;
    for b in kernel.bytes().chain(logical.bytes()) {
        seed = seed
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(u64::from(b));
    }
    (0..len)
        .map(|_| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) % 6 + 1
        })
        .collect()
}

/// Optimization configuration for [`simulate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Enable resource sharing (§5.1).
    pub resource_sharing: bool,
    /// Enable register sharing (§5.2).
    pub minimize_regs: bool,
    /// Enable latency inference + static compilation (§4.4, §5.3).
    pub static_timing: bool,
}

impl PipelineConfig {
    /// Everything on — the paper's headline configuration.
    pub fn all() -> Self {
        PipelineConfig {
            resource_sharing: true,
            minimize_regs: true,
            static_timing: true,
        }
    }

    /// Everything off — the ablation baseline.
    pub fn none() -> Self {
        PipelineConfig {
            resource_sharing: false,
            minimize_regs: false,
            static_timing: false,
        }
    }
}

/// Result of a verified simulation run.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Simulated cycles (go to done).
    pub cycles: u64,
    /// The lowered Calyx program (for area estimation / emission).
    pub lowered: Context,
    /// The lowered Dahlia AST (for the HLS baseline model).
    pub ast: Program,
}

/// Compile a kernel to Calyx (unlowered) plus its lowered Dahlia AST.
///
/// # Errors
///
/// Propagates Dahlia front-end errors.
pub fn compile_kernel(def: &KernelDef, n: u64, unroll: u64) -> CalyxResult<(Program, Context)> {
    let src = (def.source)(n, unroll);
    calyx_dahlia::compile_with_ast(&src)
}

/// Compile, lower, simulate with deterministic inputs, and verify every
/// output memory against the reference semantics.
///
/// # Errors
///
/// Returns compilation/simulation errors, or [`Error::Malformed`] when an
/// output memory diverges from the reference (a compiler bug).
pub fn simulate(
    def: &KernelDef,
    n: u64,
    unroll: u64,
    cfg: PipelineConfig,
) -> CalyxResult<KernelRun> {
    let (ast, mut ctx) = compile_kernel(def, n, unroll)?;
    passes::optimized_pipeline(cfg.resource_sharing, cfg.minimize_regs, cfg.static_timing)
        .run(&mut ctx)?;

    let mut sim =
        Simulator::new(&ctx, "main").map_err(|e| Error::malformed(format!("{}: {e}", def.name)))?;

    // Deterministic logical data, shared between the design and the
    // reference run.
    let mut logical: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for decl in &ast.decls {
        let lname = logical_of(decl.name.as_str());
        logical
            .entry(lname.clone())
            .or_insert_with(|| input_data(def.name, &lname, decl.size() as usize));
    }

    // Initialize physical memories (bank-split).
    for decl in &ast.decls {
        let data = &logical[&logical_of(decl.name.as_str())];
        let banks = split_banks(decl, data);
        for ((bank_name, _), bank_data) in memory_banks(decl).iter().zip(&banks) {
            sim.set_memory(&[bank_name], bank_data)
                .map_err(|e| Error::malformed(format!("{}: {e}", def.name)))?;
        }
    }

    let stats = sim
        .run(100_000_000)
        .map_err(|e| Error::malformed(format!("{}: {e}", def.name)))?;

    // Reference execution on the logical arrays.
    let mut expected = logical.clone();
    (def.reference)(n as usize, &mut expected);

    // Verify outputs (reading back from the physical memory named after the
    // logical array).
    for &out in def.outputs {
        let decl = ast
            .decls
            .iter()
            .find(|d| d.name.as_str() == out)
            .ok_or_else(|| Error::malformed(format!("{}: no physical memory `{out}`", def.name)))?;
        let banks: Vec<Vec<u64>> = memory_banks(decl)
            .iter()
            .map(|(name, _)| {
                sim.memory(&[name])
                    .map_err(|e| Error::malformed(format!("{}: {e}", def.name)))
            })
            .collect::<CalyxResult<_>>()?;
        let got = join_banks(decl, &banks);
        let want = &expected[out];
        if got != *want {
            return Err(Error::malformed(format!(
                "{} (n={n}, unroll={unroll}): output `{out}` diverges\n  got  {got:?}\n  want {want:?}",
                def.name
            )));
        }
    }

    Ok(KernelRun {
        cycles: stats.cycles,
        lowered: ctx,
        ast,
    })
}

// ---------------------------------------------------------------------------
// Reference implementations (mirror the Dahlia sources statement-for-
// statement; see `reference` for the arithmetic conventions).
// ---------------------------------------------------------------------------

fn get2(m: &BTreeMap<String, Vec<u64>>, k: &str) -> Vec<u64> {
    m[k].clone()
}

fn ref_gemm(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let a = get2(m, "a");
    let b = get2(m, "b");
    let c = m.get_mut("c").expect("c");
    for i in 0..n {
        for j in 0..n {
            c[ix(n, i, j)] = mul(c[ix(n, i, j)], 3);
            for k in 0..n {
                let t = mul(a[ix(n, i, k)], b[ix(n, k, j)]);
                c[ix(n, i, j)] = add(c[ix(n, i, j)], t);
            }
        }
    }
}

fn ref_2mm(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let a = get2(m, "a");
    let b = get2(m, "b");
    let c = get2(m, "c");
    let tmp = m.get_mut("tmp").expect("tmp");
    for i in 0..n {
        for j in 0..n {
            tmp[ix(n, i, j)] = 0;
            for k in 0..n {
                tmp[ix(n, i, j)] = add(tmp[ix(n, i, j)], mul(a[ix(n, i, k)], b[ix(n, k, j)]));
            }
        }
    }
    let tmp = get2(m, "tmp");
    let d = m.get_mut("d").expect("d");
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                d[ix(n, i, j)] = add(d[ix(n, i, j)], mul(tmp[ix(n, i, k)], c[ix(n, k, j)]));
            }
        }
    }
}

fn ref_3mm(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let a = get2(m, "a");
    let b = get2(m, "b");
    let c = get2(m, "c");
    let d = get2(m, "d");
    {
        let e = m.get_mut("e").expect("e");
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    e[ix(n, i, j)] = add(e[ix(n, i, j)], mul(a[ix(n, i, k)], b[ix(n, k, j)]));
                }
            }
        }
    }
    {
        let f = m.get_mut("f").expect("f");
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    f[ix(n, i, j)] = add(f[ix(n, i, j)], mul(c[ix(n, i, k)], d[ix(n, k, j)]));
                }
            }
        }
    }
    let e = get2(m, "e");
    let f = get2(m, "f");
    let g = m.get_mut("g").expect("g");
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                g[ix(n, i, j)] = add(g[ix(n, i, j)], mul(e[ix(n, i, k)], f[ix(n, k, j)]));
            }
        }
    }
}

fn ref_atax(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let a = get2(m, "a");
    let x = get2(m, "x");
    {
        let tmp = m.get_mut("tmp").expect("tmp");
        for i in 0..n {
            tmp[i] = 0;
            for j in 0..n {
                tmp[i] = add(tmp[i], mul(a[ix(n, i, j)], x[j]));
            }
        }
    }
    let tmp = get2(m, "tmp");
    let y = m.get_mut("y").expect("y");
    for i in 0..n {
        for j in 0..n {
            y[j] = add(y[j], mul(a[ix(n, i, j)], tmp[i]));
        }
    }
}

fn ref_bicg(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let a = get2(m, "a");
    let r = get2(m, "r");
    let p = get2(m, "p");
    {
        let s = m.get_mut("s").expect("s");
        for i in 0..n {
            for j in 0..n {
                s[j] = add(s[j], mul(r[i], a[ix(n, i, j)]));
            }
        }
    }
    let q = m.get_mut("q").expect("q");
    for i in 0..n {
        q[i] = 0;
        for j in 0..n {
            q[i] = add(q[i], mul(a[ix(n, i, j)], p[j]));
        }
    }
}

fn ref_doitgen(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let c4 = get2(m, "c4");
    let xa = m.get_mut("xa").expect("xa");
    let mut sum = vec![0u64; n];
    let ix3 = |r: usize, q: usize, p: usize| (r * n + q) * n + p;
    for r in 0..n {
        for q in 0..n {
            for p in 0..n {
                sum[p] = 0;
                for s in 0..n {
                    sum[p] = add(sum[p], mul(xa[ix3(r, q, s)], c4[ix(n, s, p)]));
                }
            }
            for p in 0..n {
                xa[ix3(r, q, p)] = sum[p];
            }
        }
    }
    m.insert("sum".to_string(), sum);
}

fn ref_mvt(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let a = get2(m, "a");
    let y1 = get2(m, "y1");
    let y2 = get2(m, "y2");
    {
        let x1 = m.get_mut("x1").expect("x1");
        for i in 0..n {
            for j in 0..n {
                x1[i] = add(x1[i], mul(a[ix(n, i, j)], y1[j]));
            }
        }
    }
    let x2 = m.get_mut("x2").expect("x2");
    for i in 0..n {
        for j in 0..n {
            x2[i] = add(x2[i], mul(a[ix(n, j, i)], y2[j]));
        }
    }
}

fn ref_gemver(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let u1 = get2(m, "u1");
    let v1 = get2(m, "v1");
    let u2 = get2(m, "u2");
    let v2 = get2(m, "v2");
    let y = get2(m, "y");
    let z = get2(m, "z");
    {
        let a = m.get_mut("a").expect("a");
        for i in 0..n {
            for j in 0..n {
                let t1 = mul(u1[i], v1[j]);
                let t2 = mul(u2[i], v2[j]);
                a[ix(n, i, j)] = add(add(a[ix(n, i, j)], t1), t2);
            }
        }
    }
    let a = get2(m, "a");
    {
        let x = m.get_mut("x").expect("x");
        for i in 0..n {
            for j in 0..n {
                let t3 = mul(a[ix(n, j, i)], y[j]);
                x[i] = add(x[i], m32(t3 << 1));
            }
        }
        for i in 0..n {
            x[i] = add(x[i], z[i]);
        }
    }
    let x = get2(m, "x");
    let w = m.get_mut("w").expect("w");
    for i in 0..n {
        for j in 0..n {
            let t5 = mul(a[ix(n, i, j)], x[j]);
            w[i] = add(w[i], m32(t5 << 1));
        }
    }
}

fn ref_gesummv(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let a = get2(m, "a");
    let b = get2(m, "b");
    let x = get2(m, "x");
    let mut tmp = vec![0u64; n];
    let y = m.get_mut("y").expect("y");
    for i in 0..n {
        tmp[i] = 0;
        y[i] = 0;
        for j in 0..n {
            tmp[i] = add(tmp[i], mul(a[ix(n, i, j)], x[j]));
            y[i] = add(y[i], mul(b[ix(n, i, j)], x[j]));
        }
        y[i] = add(m32(tmp[i] << 1), add(m32(y[i] << 1), y[i]));
    }
    m.insert("tmp".to_string(), tmp);
}

fn ref_symm(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let a = get2(m, "a");
    let b = get2(m, "b");
    let c = m.get_mut("c").expect("c");
    for i in 0..n {
        for j in 0..n {
            let mut t2v: u64 = 0;
            let bij = b[ix(n, i, j)];
            for k in 0..n {
                if k < i {
                    c[ix(n, k, j)] = add(c[ix(n, k, j)], mul(bij, a[ix(n, i, k)]));
                    t2v = add(t2v, mul(b[ix(n, k, j)], a[ix(n, i, k)]));
                }
            }
            let paa = mul(bij, a[ix(n, i, i)]);
            c[ix(n, i, j)] = add(c[ix(n, i, j)], add(paa, t2v));
        }
    }
}

fn ref_syrk(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let a = get2(m, "a");
    let c = m.get_mut("c").expect("c");
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                c[ix(n, i, j)] = add(c[ix(n, i, j)], mul(a[ix(n, i, k)], a[ix(n, j, k)]));
            }
        }
    }
}

fn ref_syr2k(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let a = get2(m, "a");
    let b = get2(m, "b");
    let c = m.get_mut("c").expect("c");
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let t1 = mul(a[ix(n, i, k)], b[ix(n, j, k)]);
                let t2 = mul(b[ix(n, i, k)], a[ix(n, j, k)]);
                c[ix(n, i, j)] = add(c[ix(n, i, j)], add(t1, t2));
            }
        }
    }
}

fn ref_trmm(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let a = get2(m, "a");
    let b = m.get_mut("b").expect("b");
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                if k > i {
                    let t = mul(a[ix(n, k, i)], b[ix(n, k, j)]);
                    b[ix(n, i, j)] = add(b[ix(n, i, j)], t);
                }
            }
        }
    }
}

fn ref_trisolv(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let l = get2(m, "l");
    let b = get2(m, "b");
    let x = m.get_mut("x").expect("x");
    for i in 0..n {
        let mut acc = b[i];
        for j in 0..n {
            if j < i {
                acc = sub(acc, mul(l[ix(n, i, j)], x[j]));
            }
        }
        x[i] = div(acc, l[ix(n, i, i)]);
    }
}

fn ref_cholesky(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let a = m.get_mut("a").expect("a");
    for i in 0..n {
        for j in 0..n {
            if j <= i {
                let mut acc = a[ix(n, i, j)];
                for k in 0..n {
                    if k < j {
                        acc = sub(acc, mul(a[ix(n, i, k)], a[ix(n, j, k)]));
                    }
                }
                if j == i {
                    a[ix(n, i, j)] = sqrt(acc);
                } else {
                    a[ix(n, i, j)] = div(acc, a[ix(n, j, j)]);
                }
            }
        }
    }
}

fn ref_lu(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let a = m.get_mut("a").expect("a");
    lu_in_place(n, a);
}

fn lu_in_place(n: usize, a: &mut [u64]) {
    for i in 0..n {
        for j in 0..n {
            if j < i {
                let mut acc = a[ix(n, i, j)];
                for k in 0..n {
                    if k < j {
                        acc = sub(acc, mul(a[ix(n, i, k)], a[ix(n, k, j)]));
                    }
                }
                a[ix(n, i, j)] = div(acc, a[ix(n, j, j)]);
            }
        }
        for j in 0..n {
            if j >= i {
                let mut acc = a[ix(n, i, j)];
                for k in 0..n {
                    if k < i {
                        acc = sub(acc, mul(a[ix(n, i, k)], a[ix(n, k, j)]));
                    }
                }
                a[ix(n, i, j)] = acc;
            }
        }
    }
}

fn ref_ludcmp(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    {
        let a = m.get_mut("a").expect("a");
        lu_in_place(n, a);
    }
    let a = get2(m, "a");
    let b = get2(m, "b");
    {
        let y = m.get_mut("y").expect("y");
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..n {
                if j < i {
                    acc = sub(acc, mul(a[ix(n, i, j)], y[j]));
                }
            }
            y[i] = acc;
        }
    }
    let y = get2(m, "y");
    let x = m.get_mut("x").expect("x");
    for ii in 0..n {
        let i = n - 1 - ii;
        let mut acc = y[i];
        for j in 0..n {
            if j > i {
                acc = sub(acc, mul(a[ix(n, i, j)], x[j]));
            }
        }
        x[i] = div(acc, a[ix(n, i, i)]);
    }
}

fn ref_durbin(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let r = get2(m, "r");
    let mut z = get2(m, "z");
    let y = m.get_mut("y").expect("y");
    let mut alpha = sub(0, r[0]);
    let mut beta: u64 = 1;
    y[0] = sub(0, r[0]);
    for k in 1..n {
        let aa = mul(alpha, alpha);
        let onema = sub(1, aa);
        beta = mul(onema, beta);
        let mut sum: u64 = 0;
        for i in 0..n {
            if i < k {
                sum = add(sum, mul(r[k - i - 1], y[i]));
            }
        }
        let num = sub(0, add(r[k], sum));
        alpha = div(num, beta);
        for i in 0..n {
            if i < k {
                z[i] = add(y[i], mul(alpha, y[k - i - 1]));
            }
        }
        for i in 0..n {
            if i < k {
                y[i] = z[i];
            }
        }
        y[k] = alpha;
    }
    m.insert("z".to_string(), z);
}

fn ref_gramschmidt(n: usize, m: &mut BTreeMap<String, Vec<u64>>) {
    let mut a = get2(m, "a");
    let mut q = get2(m, "q");
    let mut r = get2(m, "r");
    for k in 0..n {
        let mut nrm: u64 = 0;
        for i in 0..n {
            let av = a[ix(n, i, k)];
            nrm = add(nrm, mul(av, av));
        }
        let rkk = sqrt(nrm);
        r[ix(n, k, k)] = rkk;
        for i in 0..n {
            q[ix(n, i, k)] = div(a[ix(n, i, k)], rkk);
        }
        for j in 0..n {
            if j > k {
                let mut rsum: u64 = 0;
                for i in 0..n {
                    rsum = add(rsum, mul(q[ix(n, i, k)], a[ix(n, i, j)]));
                }
                r[ix(n, k, j)] = rsum;
                for i in 0..n {
                    a[ix(n, i, j)] = sub(a[ix(n, i, j)], mul(q[ix(n, i, k)], rsum));
                }
            }
        }
    }
    m.insert("a".to_string(), a);
    m.insert("q".to_string(), q);
    m.insert("r".to_string(), r);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_nineteen_kernels() {
        assert_eq!(KERNELS.len(), 19);
        let unrollable = KERNELS.iter().filter(|k| k.unrollable).count();
        assert_eq!(unrollable, 10);
    }

    #[test]
    fn input_data_is_deterministic_and_nonzero() {
        let a = input_data("gemm", "a", 64);
        let b = input_data("gemm", "a", 64);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (1..=6).contains(&v)));
        assert_ne!(a, input_data("gemm", "b", 64));
    }

    #[test]
    fn all_sources_parse_and_check() {
        for k in KERNELS {
            let src = (k.source)(4, 1);
            let p = calyx_dahlia::parse(&src).unwrap_or_else(|e| panic!("{}: {e}\n{src}", k.name));
            calyx_dahlia::check::check(&p).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn unrolled_sources_parse_and_check() {
        for k in KERNELS.iter().filter(|k| k.unrollable) {
            let src = (k.source)(4, 2);
            let p = calyx_dahlia::parse(&src).unwrap_or_else(|e| panic!("{}: {e}\n{src}", k.name));
            calyx_dahlia::check::check(&p).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn gemm_simulates_correctly() {
        simulate(kernel("gemm").unwrap(), 4, 1, PipelineConfig::none()).unwrap();
    }

    #[test]
    fn trisolv_simulates_correctly_with_division() {
        simulate(kernel("trisolv").unwrap(), 4, 1, PipelineConfig::none()).unwrap();
    }

    #[test]
    fn cholesky_simulates_correctly_with_sqrt() {
        simulate(kernel("cholesky").unwrap(), 4, 1, PipelineConfig::all()).unwrap();
    }

    #[test]
    fn unrolled_gemm_matches_reference() {
        simulate(kernel("gemm").unwrap(), 4, 2, PipelineConfig::none()).unwrap();
    }
}
