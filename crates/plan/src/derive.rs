//! Deriving the standard build graph from the four existing registries.
//!
//! The graph is not hand-maintained: states and ops fall out of the
//! frontend, pass-alias, backend, and lint registries, so registering a
//! new frontend or backend automatically grows the plan space. The
//! rules:
//!
//! - Every **frontend** contributes a source state (named after the
//!   frontend, claiming its registered extensions) and — except the
//!   native `calyx` parser, whose state *is* the hub — a
//!   `<frontend>-to-calyx` op producing canonical Calyx text.
//! - Every **pass alias** whose expansion lowers (contains
//!   `remove-groups`) contributes an op from `calyx` to the shared
//!   `calyx-lowered` state, fingerprinted on its expansion so editing an
//!   alias invalidates exactly the builds that used it. Costs prefer
//!   `lower` over the heavier static/optimizing pipelines; a
//!   non-lowering alias (like `none`) maps `calyx` to itself and is
//!   skipped. Unknown (third-party) aliases get a cost above the
//!   standard four so they never silently hijack a default route.
//! - Every **backend** except the `calyx` printer contributes an
//!   `emit-<name>` op from `calyx`, running the backend's declared
//!   pipeline in-op before emitting (`verilog` runs `lower`, `interp`
//!   runs `none` = well-formedness). Emission deliberately does *not*
//!   read the `calyx-lowered` state: lowered guard expressions flatten
//!   when printed and re-associate when re-parsed, so an extra
//!   print/parse roundtrip after the pass pipeline would change the
//!   emitted guard grouping — plan-built artifacts must be
//!   byte-identical to direct `futil -f ... -b ...` runs, and only
//!   pre-pass canonical text has that pinned roundtrip property. The
//!   target state is `verilog` for the SystemVerilog backend and
//!   `<name>-report` otherwise, with the artifact extension taken from
//!   [`Backend::EXTENSION`] via the registry. The fingerprint folds in
//!   the *expanded* pipeline, so editing an alias invalidates the
//!   emissions that ran it.
//! - The **lint registry** contributes one hand-registered composite
//!   op, `check`, from `calyx` to `lint-report` — the `futil check`
//!   report as a cacheable artifact, fingerprinted on the registered
//!   lint codes.
//!
//! Third parties extend the graph the same two ways they extend the
//! underlying registries: register into those registries and call
//! [`from_registries`], or add bespoke states/ops directly with
//! [`PlanGraph::add_state`]/[`PlanGraph::add_op`].

use crate::graph::PlanGraph;
use crate::op::{OpSpec, OptUse};
use calyx_backend::{BackendOpts, BackendRegistry};
use calyx_core::analysis::AnalysisCache;
use calyx_core::errors::Error;
use calyx_core::ir::{parse_context, Printer};
use calyx_core::lint::LintRegistry;
use calyx_core::passes::PassRegistry;
use calyx_frontend::{FrontendOpts, FrontendRegistry};

/// The pass that marks an expansion as "lowering": after it the program
/// is structural (no groups, no control), i.e. in the `calyx-lowered`
/// state.
const LOWERING_MARK: &str = "remove-groups";

/// Routing cost of a pipeline-alias op. The standard aliases are ranked
/// so a bare `--to verilog` plans the paper's plain lowering pipeline,
/// not the heavier static or optimizing ones; third-party aliases rank
/// after all four until given an explicit cost here.
fn alias_cost(name: &str) -> u32 {
    match name {
        "lower" => 10,
        "lower-static" => 20,
        "opt" => 30,
        "all" => 40,
        _ => 50,
    }
}

/// The standard build graph, derived from the default registries.
pub fn standard() -> PlanGraph {
    from_registries(
        &FrontendRegistry::default(),
        &PassRegistry::default(),
        &BackendRegistry::default(),
        &LintRegistry::default(),
    )
}

/// Derive a build graph from (possibly extended) registries. See the
/// [module docs](self) for the derivation rules. Hand the *same*
/// registries to [`ExecEnv`](crate::ExecEnv) so execution resolves the
/// same entries the derivation advertised.
pub fn from_registries(
    frontends: &FrontendRegistry,
    passes: &PassRegistry,
    backends: &BackendRegistry,
    lints: &LintRegistry,
) -> PlanGraph {
    let mut g = PlanGraph::empty();

    // Frontend states: one per registered frontend, claiming its input
    // extensions. The native parser's state is the `calyx` hub.
    for f in frontends.frontends() {
        let artifact_ext = f.extensions.first().copied().unwrap_or(f.name);
        g.add_state(f.name, f.description, f.extensions, artifact_ext);
    }
    let calyx = g
        .state_id("calyx")
        .expect("the native `calyx` frontend is the hub of the standard graph");
    let lowered = g.add_state(
        "calyx-lowered",
        "Calyx after a lowering pipeline (structural: no groups, no control)",
        &[],
        "futil",
    );

    // Frontend ops: `<name>-to-calyx`, producing canonical text so every
    // downstream cache key sees the same bytes the parse cache pins.
    for f in frontends.frontends() {
        if f.name == "calyx" {
            continue;
        }
        let from = g.state_id(f.name).expect("state registered above");
        let name = f.name.to_string();
        g.add_op(OpSpec {
            name: format!("{}-to-calyx", f.name),
            description: format!("run the `{}` frontend, emitting canonical Calyx", f.name),
            from,
            to: calyx,
            cost: 10,
            fingerprint: format!("frontend:{}", f.name),
            uses: OptUse {
                // Only parametric frontends fold `--fopt` into the key.
                fopts: !f.options.is_empty(),
                ..OptUse::default()
            },
            run: Box::new(move |src, env, opts| {
                let mut fopts = FrontendOpts::new();
                for (k, v) in &opts.fopts {
                    fopts.set(k.clone(), v.clone());
                }
                let ctx = env.frontends.get(&name, &fopts)?.parse(src)?;
                Ok(Printer::print_context(&ctx))
            }),
        });
    }

    // Pipeline-alias ops: `calyx` → `calyx-lowered`, fingerprinted on
    // the expansion. Non-lowering aliases (`none`) are skipped — they
    // map the state to itself.
    for (alias, expansion) in passes.aliases() {
        if !expansion.contains(&LOWERING_MARK) {
            continue;
        }
        let names: Vec<String> = expansion.iter().map(|p| (*p).to_string()).collect();
        g.add_op(OpSpec {
            name: alias.to_string(),
            description: format!("run the `{alias}` pass pipeline ({} passes)", names.len()),
            from: calyx,
            to: lowered,
            cost: alias_cost(alias),
            fingerprint: format!("passes:{}", names.join(",")),
            uses: OptUse::default(),
            run: Box::new(move |src, env, _| {
                let mut ctx = parse_context(src)?;
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                env.passes.build(&refs)?.run(&mut ctx)?;
                Ok(Printer::print_context(&ctx))
            }),
        });
    }

    // Backend ops: `emit-<name>`, from canonical `calyx`, running the
    // backend's declared pipeline in-op (see the module docs for why
    // emission does not read `calyx-lowered`). An empty declaration
    // defaults to `lower`, mirroring the direct driver.
    for b in backends.backends() {
        if b.name == "calyx" {
            continue;
        }
        let run_pre: Vec<String> = if b.required_pipeline.is_empty() {
            vec!["lower".to_string()]
        } else {
            b.required_pipeline
                .iter()
                .map(|p| (*p).to_string())
                .collect()
        };
        let pre_refs: Vec<&str> = run_pre.iter().map(String::as_str).collect();
        // Fingerprint on the expansion, so alias edits invalidate; fall
        // back to the raw names when the alias is not in `passes`.
        let expanded = passes
            .expand(&pre_refs)
            .map(|ps| ps.join(","))
            .unwrap_or_else(|_| run_pre.join(","));
        let to = if b.name == "verilog" {
            g.add_state("verilog", b.description, &[], b.extension)
        } else {
            g.add_state(
                &format!("{}-report", b.name),
                b.description,
                &[],
                b.extension,
            )
        };
        let name = b.name.to_string();
        g.add_op(OpSpec {
            name: format!("emit-{}", b.name),
            description: format!(
                "run the `{}` pipeline, then the `{}` backend",
                run_pre.join(" "),
                b.name
            ),
            from: calyx,
            to,
            cost: 10,
            fingerprint: format!("backend:{}:pre:{expanded}", b.name),
            // Which driver options a backend consumes is not declared in
            // its registration, so claim both — over-claiming costs a
            // spurious re-run, under-claiming serves stale artifacts.
            uses: OptUse {
                cycles: true,
                format: true,
                ..OptUse::default()
            },
            run: Box::new(move |src, env, opts| {
                let mut ctx = parse_context(src)?;
                if !run_pre.is_empty() {
                    let refs: Vec<&str> = run_pre.iter().map(String::as_str).collect();
                    env.passes.build(&refs)?.run(&mut ctx)?;
                }
                let backend = env.backends.get(
                    &name,
                    &BackendOpts {
                        cycles: opts.cycles,
                        format: opts.format,
                    },
                )?;
                let mut out = Vec::new();
                backend.emit(&ctx, &mut out)?;
                String::from_utf8(out)
                    .map_err(|_| Error::malformed(format!("backend `{name}` emitted non-UTF-8")))
            }),
        });
    }

    // The hand-registered composite op: the whole lint registry as one
    // cacheable `check` step. Findings are the *artifact*, not a
    // failure — `futil build --to lint-report` always produces a report.
    let lint_report = g.add_state(
        "lint-report",
        "diagnostics from every registered lint, as text or JSON",
        &[],
        "lint",
    );
    let codes: Vec<&str> = lints.lints().iter().map(|l| l.code).collect();
    g.add_op(OpSpec {
        name: "check".to_string(),
        description: format!("run all {} registered lints", codes.len()),
        from: calyx,
        to: lint_report,
        cost: 10,
        fingerprint: format!("lints:{}", codes.join(",")),
        uses: OptUse {
            format: true,
            ..OptUse::default()
        },
        run: Box::new(|src, env, opts| {
            let ctx = parse_context(src)?;
            let sink = env.lints.check_all(&ctx, &mut AnalysisCache::new());
            Ok(match opts.format {
                calyx_backend::ReportFormat::Text => sink.render_text("<plan>", src),
                calyx_backend::ReportFormat::Json => sink.render_json("<plan>"),
            })
        }),
    });

    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, BuildOpts};
    use crate::op::ExecEnv;

    #[test]
    fn standard_graph_has_the_expected_states_and_ops() {
        let g = standard();
        let states: Vec<&str> = g.states().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            states,
            [
                "calyx",
                "dahlia",
                "systolic",
                "polybench",
                "calyx-lowered",
                "verilog",
                "area-report",
                "sim-report",
                "interp-report",
                "lint-report",
            ]
        );
        let ops: Vec<&str> = g.ops().iter().map(|o| o.name()).collect();
        assert_eq!(
            ops,
            [
                "dahlia-to-calyx",
                "systolic-to-calyx",
                "polybench-to-calyx",
                "lower",
                "lower-static",
                "opt",
                "all",
                "emit-verilog",
                "emit-area",
                "emit-sim",
                "emit-interp",
                "check",
            ]
        );
    }

    #[test]
    fn every_lowering_alias_is_an_op_and_none_is_not() {
        let g = standard();
        for (alias, expansion) in PassRegistry::default().aliases() {
            let derived = g.op_by_name(alias).is_some();
            assert_eq!(
                derived,
                expansion.contains(&LOWERING_MARK),
                "alias `{alias}` derivation disagrees with its expansion"
            );
        }
        assert!(g.op_by_name("none").is_none());
    }

    #[test]
    fn state_extensions_mirror_the_frontend_registry() {
        let g = standard();
        for f in FrontendRegistry::default().frontends() {
            let id = g.state_id(f.name).expect("frontend state derived");
            assert_eq!(g.state(id).extensions, f.extensions);
        }
        assert_eq!(
            g.infer_state("kernels/gemm.fuse"),
            g.state_id("dahlia"),
            "plan inference must match `futil -f` inference"
        );
    }

    #[test]
    fn artifact_extensions_mirror_the_backend_registry() {
        let g = standard();
        for b in BackendRegistry::default().backends() {
            if b.name == "calyx" {
                continue;
            }
            let state = if b.name == "verilog" {
                "verilog".to_string()
            } else {
                format!("{}-report", b.name)
            };
            let id = g.state_id(&state).expect("backend state derived");
            assert_eq!(g.state(id).artifact_ext, b.extension);
        }
    }

    #[test]
    fn default_route_to_verilog_is_frontend_then_emit() {
        let g = standard();
        let route = g
            .plan(
                g.state_id("dahlia").unwrap(),
                g.state_id("verilog").unwrap(),
            )
            .unwrap();
        let names: Vec<&str> = route.steps.iter().map(|&i| g.ops()[i].name()).collect();
        assert_eq!(names, ["dahlia-to-calyx", "emit-verilog"]);
    }

    #[test]
    fn default_route_to_lowered_uses_the_plain_lowering_alias() {
        let g = standard();
        let route = g
            .plan(
                g.state_id("calyx").unwrap(),
                g.state_id("calyx-lowered").unwrap(),
            )
            .unwrap();
        let names: Vec<&str> = route.steps.iter().map(|&i| g.ops()[i].name()).collect();
        // Cost ranking: `lower` beats `lower-static`, `opt`, and `all`.
        assert_eq!(names, ["lower"]);
    }

    #[test]
    fn source_states_cannot_be_goals() {
        let g = standard();
        let msg = g
            .plan(g.state_id("calyx").unwrap(), g.state_id("dahlia").unwrap())
            .unwrap_err()
            .to_string();
        assert!(
            msg.contains("no route from state `calyx` to `dahlia`"),
            "{msg}"
        );
        assert!(msg.contains("verilog"), "{msg}");
    }

    /// The README's "Plan-based builds" tables are rebuilt row-by-row
    /// from the derived graph — the same strings `--list-states` and
    /// `--list-ops` print — so the documentation cannot drift.
    #[test]
    fn readme_plan_tables_stay_in_sync() {
        let readme = include_str!("../../../README.md");
        let g = standard();
        for s in g.states() {
            let exts = if s.extensions.is_empty() {
                "—".to_string()
            } else {
                s.extensions
                    .iter()
                    .map(|e| format!("`.{e}`"))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let row = format!("| `{}` | {} | {} |", s.name, exts, s.description);
            assert!(readme.contains(&row), "README missing state row: {row}");
        }
        for op in g.ops() {
            let row = format!(
                "| `{}` | `{}` -> `{}` | {} |",
                op.name(),
                g.state(op.from()).name,
                g.state(op.to()).name,
                op.description()
            );
            assert!(readme.contains(&row), "README missing op row: {row}");
        }
    }

    /// Third parties extend the *standard* graph directly: a bespoke
    /// state and op slot into routes alongside the derived ones.
    #[test]
    fn third_parties_extend_the_standard_graph() {
        let mut g = standard();
        let verilog = g.state_id("verilog").unwrap();
        let bitstream = g.add_state("bitstream", "a mock place-and-route result", &[], "bit");
        g.add_op(OpSpec {
            name: "place-and-route".into(),
            description: "mock place-and-route".into(),
            from: verilog,
            to: bitstream,
            cost: 10,
            fingerprint: "pnr:mock".into(),
            uses: OptUse::default(),
            run: Box::new(|src, _, _| Ok(format!("BITSTREAM {} bytes", src.len()))),
        });
        let route = g.plan(g.state_id("dahlia").unwrap(), bitstream).unwrap();
        let names: Vec<&str> = route.steps.iter().map(|&i| g.ops()[i].name()).collect();
        assert_eq!(
            names,
            ["dahlia-to-calyx", "emit-verilog", "place-and-route"]
        );
        let out = execute(
            &g,
            &route,
            "decl a: ubit<32>[1];\nlet x: ubit<32> = a[0];",
            &ExecEnv::default(),
            &BuildOpts {
                use_cache: false,
                ..BuildOpts::default()
            },
        )
        .unwrap();
        assert!(out.output.starts_with("BITSTREAM "), "{}", out.output);
    }

    /// End-to-end over a real program, no cache: calyx → lowered →
    /// verilog, plus the composite check op.
    #[test]
    fn standard_ops_execute_real_programs() {
        let src = "component main() -> () {
            cells { r = std_reg(8); }
            wires { group g { r.in = 8'd7; r.write_en = 1'd1; g[done] = r.done; } }
            control { g; }
          }";
        let g = standard();
        let env = ExecEnv::default();
        let build = BuildOpts {
            use_cache: false,
            ..BuildOpts::default()
        };
        let calyx = g.state_id("calyx").unwrap();
        let route = g.plan(calyx, g.state_id("verilog").unwrap()).unwrap();
        let out = execute(&g, &route, src, &env, &build).unwrap();
        assert!(out.output.contains("module main"), "{}", out.output);

        let route = g.plan(calyx, g.state_id("lint-report").unwrap()).unwrap();
        // Clean program: empty text report (same as `futil check`).
        let report = execute(&g, &route, src, &env, &build).unwrap();
        assert!(report.output.is_empty(), "{}", report.output);
        let json_build = BuildOpts {
            opts: crate::op::OpOpts {
                format: calyx_backend::ReportFormat::Json,
                ..crate::op::OpOpts::default()
            },
            ..build
        };
        let report = execute(&g, &route, src, &env, &json_build).unwrap();
        assert!(report.output.contains("\"errors\": 0"), "{}", report.output);
    }
}
