//! Plan-based build orchestration: a typed state graph, route planner,
//! and content-addressed artifact cache — the machinery behind
//! `futil build` and `futil plan`.
//!
//! The existing driver is imperative: the user names a frontend, a
//! pipeline, and a backend, and `futil` runs exactly those. This crate
//! inverts that: the user names only what they *have* (inferred from
//! the input's extension) and what they *want* (`--to verilog`), and
//! the planner finds the cheapest op sequence between the two — the
//! fud-style "states and ops" workflow, reproduced over this
//! repository's own registries.
//!
//! - [`PlanGraph`] is the fifth registry: typed [`State`]s, one per
//!   artifact kind (Dahlia source, canonical Calyx, lowered Calyx,
//!   SystemVerilog, simulation/area/lint reports), connected by
//!   [`Op`]s. The standard graph is *derived* from the frontend,
//!   pass-alias, backend, and lint registries by [`derive::standard`],
//!   so registering a new frontend or backend automatically grows the
//!   plan space; third parties add bespoke states and ops with
//!   [`PlanGraph::add_state`] / [`PlanGraph::add_op`].
//! - [`PlanGraph::plan`] routes between states (deterministic
//!   shortest-path); an unreachable goal is an error listing the states
//!   that *are* reachable.
//! - [`execute`] runs a route through an [`ArtifactCache`]: every step
//!   is keyed on the digest of its input text plus the op's
//!   [fingerprint](Op::fingerprint), so warm rebuilds skip every clean
//!   step and an edit re-runs only what it actually invalidates.
//!
//! ```
//! use calyx_plan::{derive, execute, BuildOpts, ExecEnv};
//!
//! let graph = derive::standard();
//! let from = graph.infer_state("examples/dotprod.fuse").unwrap();
//! let to = graph.state_id("verilog").unwrap();
//! let route = graph.plan(from, to).unwrap();
//! let ops: Vec<&str> = route.steps.iter().map(|&i| graph.ops()[i].name()).collect();
//! assert_eq!(ops, ["dahlia-to-calyx", "emit-verilog"]);
//!
//! let src = "decl a: ubit<32>[4];
//!            let acc: ubit<32> = 0;
//!            ---
//!            for (let i: ubit<3> = 0..4) { acc := acc + a[i]; }";
//! let build = BuildOpts { use_cache: false, ..BuildOpts::default() };
//! let out = execute(&graph, &route, src, &ExecEnv::default(), &build).unwrap();
//! assert!(out.output.contains("module main"));
//! assert_eq!(out.ran(), 2);
//! ```

pub mod cache;
pub mod derive;
pub mod exec;
pub mod graph;
pub mod op;
pub mod planner;
pub mod state;

pub use cache::ArtifactCache;
pub use exec::{execute, BuildOpts, BuildOutcome, StepReport, StepStatus};
pub use graph::PlanGraph;
pub use op::{ExecEnv, Op, OpFn, OpOpts, OpSpec, OptUse};
pub use planner::Route;
pub use state::{State, StateId};
