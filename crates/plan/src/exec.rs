//! The route executor: run a [`Route`] step by step through the
//! artifact cache.
//!
//! Each step computes its cache key from the *current* artifact text
//! (not the original input), so cache hits propagate transitively: if
//! step N re-runs but produces byte-identical output, step N+1 still
//! hits. Per-step [`StepReport`]s record whether the step ran or was
//! served from cache, with wall times, so drivers can print
//! `step <op>: ran|cached` status lines and benches can assert
//! "warm rebuild executes zero steps".

use crate::cache::ArtifactCache;
use crate::graph::PlanGraph;
use crate::op::{ExecEnv, OpOpts};
use crate::planner::Route;
use calyx_core::errors::CalyxResult;
use std::path::PathBuf;
use std::time::Instant;

/// How `execute` should run a build.
#[derive(Debug, Clone)]
pub struct BuildOpts {
    /// Options forwarded to ops (and folded into fingerprints).
    pub opts: OpOpts,
    /// Artifact cache directory.
    pub cache_dir: PathBuf,
    /// When false (`--no-cache`), neither read nor write the cache:
    /// every step runs.
    pub use_cache: bool,
}

impl Default for BuildOpts {
    fn default() -> Self {
        BuildOpts {
            opts: OpOpts::default(),
            cache_dir: PathBuf::from(".futil-cache"),
            use_cache: true,
        }
    }
}

/// Whether a step actually executed or was served from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// The op ran and its output was (re)computed.
    Ran,
    /// The output was served from the artifact cache.
    Cached,
}

impl StepStatus {
    /// Lowercase label used in driver status lines.
    pub fn label(self) -> &'static str {
        match self {
            StepStatus::Ran => "ran",
            StepStatus::Cached => "cached",
        }
    }
}

/// One executed (or skipped) step of a route.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Op name.
    pub op: String,
    /// Ran or cached.
    pub status: StepStatus,
    /// Wall time of this step (cache probe included).
    pub micros: u128,
}

/// The result of executing a route.
#[derive(Debug, Clone)]
pub struct BuildOutcome {
    /// Final artifact text (the input itself for an empty route).
    pub output: String,
    /// Per-step reports, in execution order.
    pub steps: Vec<StepReport>,
}

impl BuildOutcome {
    /// How many steps actually ran (vs served from cache).
    pub fn ran(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.status == StepStatus::Ran)
            .count()
    }

    /// How many steps were served from the cache.
    pub fn cached(&self) -> usize {
        self.steps.len() - self.ran()
    }
}

/// Execute `route` over `input`, threading each step's output into the
/// next and consulting the artifact cache around every step.
///
/// # Errors
///
/// Propagates the first failing op (parse errors, pass failures,
/// backend failures) or cache-write IO errors.
pub fn execute(
    graph: &PlanGraph,
    route: &Route,
    input: &str,
    env: &ExecEnv,
    build: &BuildOpts,
) -> CalyxResult<BuildOutcome> {
    let cache = ArtifactCache::new(build.cache_dir.clone());
    let mut text = input.to_string();
    let mut steps = Vec::with_capacity(route.steps.len());
    for &idx in &route.steps {
        let op = &graph.ops()[idx];
        let artifact_ext = &graph.state(op.to()).artifact_ext;
        let start = Instant::now();
        let key = ArtifactCache::key(&op.fingerprint(&build.opts), &text);
        let (status, output) = match build
            .use_cache
            .then(|| cache.lookup(op.name(), key, artifact_ext))
            .flatten()
        {
            Some(hit) => (StepStatus::Cached, hit),
            None => {
                let out = op.run(&text, env, &build.opts)?;
                if build.use_cache {
                    cache.store(op.name(), key, artifact_ext, &out)?;
                }
                (StepStatus::Ran, out)
            }
        };
        steps.push(StepReport {
            op: op.name().to_string(),
            status,
            micros: start.elapsed().as_micros(),
        });
        text = output;
    }
    Ok(BuildOutcome {
        output: text,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpSpec, OptUse};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// a → b → c, with run counters so tests can see cache skips.
    fn graph(counter: &Arc<AtomicUsize>) -> (PlanGraph, Route) {
        let mut g = PlanGraph::empty();
        let a = g.add_state("a", "", &[], "a");
        let b = g.add_state("b", "", &[], "b");
        let c = g.add_state("c", "", &[], "c");
        for (name, from, to, tag) in [("ab", a, b, "B"), ("bc", b, c, "C")] {
            let n = Arc::clone(counter);
            g.add_op(OpSpec {
                name: name.into(),
                description: String::new(),
                from,
                to,
                cost: 10,
                fingerprint: name.into(),
                uses: OptUse::default(),
                run: Box::new(move |s, _, _| {
                    n.fetch_add(1, Ordering::SeqCst);
                    Ok(format!("{s}{tag}"))
                }),
            });
        }
        let route = g.plan(a, c).unwrap();
        (g, route)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plan-exec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn warm_rebuild_runs_zero_steps() {
        let runs = Arc::new(AtomicUsize::new(0));
        let (g, route) = graph(&runs);
        let env = ExecEnv::default();
        let build = BuildOpts {
            cache_dir: temp_dir("warm"),
            ..BuildOpts::default()
        };
        let cold = execute(&g, &route, "x", &env, &build).unwrap();
        assert_eq!(
            (cold.output.as_str(), cold.ran(), cold.cached()),
            ("xBC", 2, 0)
        );
        let warm = execute(&g, &route, "x", &env, &build).unwrap();
        assert_eq!(
            (warm.output.as_str(), warm.ran(), warm.cached()),
            ("xBC", 0, 2)
        );
        assert_eq!(runs.load(Ordering::SeqCst), 2);
        let _ = std::fs::remove_dir_all(&build.cache_dir);
    }

    #[test]
    fn no_cache_forces_every_step() {
        let runs = Arc::new(AtomicUsize::new(0));
        let (g, route) = graph(&runs);
        let env = ExecEnv::default();
        let build = BuildOpts {
            cache_dir: temp_dir("nocache"),
            use_cache: false,
            ..BuildOpts::default()
        };
        for _ in 0..2 {
            let out = execute(&g, &route, "x", &env, &build).unwrap();
            assert_eq!(out.ran(), 2);
        }
        assert_eq!(runs.load(Ordering::SeqCst), 4);
        assert!(!build.cache_dir.exists(), "--no-cache must not write");
    }

    #[test]
    fn downstream_steps_stay_cached_when_intermediate_is_identical() {
        // Two inputs that the first op maps to the same intermediate:
        // the second build re-runs step 1 but hits the cache on step 2.
        let runs = Arc::new(AtomicUsize::new(0));
        let mut g = PlanGraph::empty();
        let a = g.add_state("a", "", &[], "a");
        let b = g.add_state("b", "", &[], "b");
        let c = g.add_state("c", "", &[], "c");
        let n = Arc::clone(&runs);
        g.add_op(OpSpec {
            name: "normalize".into(),
            description: String::new(),
            from: a,
            to: b,
            cost: 10,
            fingerprint: "normalize".into(),
            uses: OptUse::default(),
            run: Box::new(move |s, _, _| Ok(s.trim().to_string())),
        });
        g.add_op(OpSpec {
            name: "emit".into(),
            description: String::new(),
            from: b,
            to: c,
            cost: 10,
            fingerprint: "emit".into(),
            uses: OptUse::default(),
            run: Box::new(move |s, _, _| {
                n.fetch_add(1, Ordering::SeqCst);
                Ok(format!("<{s}>"))
            }),
        });
        let route = g.plan(a, c).unwrap();
        let env = ExecEnv::default();
        let build = BuildOpts {
            cache_dir: temp_dir("transitive"),
            ..BuildOpts::default()
        };
        let first = execute(&g, &route, "x", &env, &build).unwrap();
        assert_eq!((first.output.as_str(), first.ran()), ("<x>", 2));
        // Whitespace-only edit: step 1 re-runs, step 2 is cached.
        let second = execute(&g, &route, "  x ", &env, &build).unwrap();
        assert_eq!(second.output, "<x>");
        assert_eq!(second.steps[0].status, StepStatus::Ran);
        assert_eq!(second.steps[1].status, StepStatus::Cached);
        assert_eq!(runs.load(Ordering::SeqCst), 1, "emit ran exactly once");
        let _ = std::fs::remove_dir_all(&build.cache_dir);
    }

    #[test]
    fn option_changes_invalidate_only_declaring_ops() {
        let mut g = PlanGraph::empty();
        let a = g.add_state("a", "", &[], "a");
        let b = g.add_state("b", "", &[], "b");
        let c = g.add_state("c", "", &[], "c");
        g.add_op(OpSpec {
            name: "blind".into(),
            description: String::new(),
            from: a,
            to: b,
            cost: 10,
            fingerprint: "blind".into(),
            uses: OptUse::default(),
            run: Box::new(|s, _, _| Ok(s.to_string())),
        });
        g.add_op(OpSpec {
            name: "sim".into(),
            description: String::new(),
            from: b,
            to: c,
            cost: 10,
            fingerprint: "sim".into(),
            uses: OptUse {
                cycles: true,
                ..OptUse::default()
            },
            run: Box::new(|s, _, o| Ok(format!("{s}@{}", o.cycles))),
        });
        let route = g.plan(a, c).unwrap();
        let env = ExecEnv::default();
        let mut build = BuildOpts {
            cache_dir: temp_dir("opts"),
            ..BuildOpts::default()
        };
        execute(&g, &route, "x", &env, &build).unwrap();
        build.opts.cycles = 42;
        let out = execute(&g, &route, "x", &env, &build).unwrap();
        assert_eq!(
            out.steps[0].status,
            StepStatus::Cached,
            "blind op unaffected"
        );
        assert_eq!(
            out.steps[1].status,
            StepStatus::Ran,
            "cycles-using op re-ran"
        );
        assert_eq!(out.output, "x@42");
        let _ = std::fs::remove_dir_all(&build.cache_dir);
    }
}
