//! Typed states: the nodes of the build graph.
//!
//! A *state* names one artifact kind the toolchain can hold in its hand
//! — Dahlia source, canonical Calyx text, lowered Calyx, SystemVerilog,
//! a simulation state report. Ops (the edges) transform one state into
//! another; the planner routes over them. States carry two kinds of
//! extension metadata:
//!
//! - [`State::extensions`] — input extensions the driver *infers* the
//!   state from (`futil build x.fuse` starts at `dahlia`). These mirror
//!   the frontend registry's extension claims for frontend-shaped
//!   states, so inference can never diverge from `futil -f` inference.
//! - [`State::artifact_ext`] — the extension cached artifacts and
//!   `--out-dir`-style files of this state are written with (mirroring
//!   [`Backend::EXTENSION`](calyx_backend::Backend::EXTENSION) for
//!   backend-shaped states).

/// Dense index of a state in its [`PlanGraph`](crate::PlanGraph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) usize);

impl StateId {
    /// The raw index (stable for the life of the graph).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One artifact kind the planner can route from or to.
#[derive(Debug, Clone)]
pub struct State {
    /// Unique kebab-case name — the `--to`/`--from` argument.
    pub name: String,
    /// One-line description for `--list-states` and the README table.
    pub description: String,
    /// Input file extensions (without the dot) the driver infers this
    /// state from. Empty means "explicit `--from` only".
    pub extensions: Vec<String>,
    /// Extension cached artifacts of this state are stored under.
    pub artifact_ext: String,
}
