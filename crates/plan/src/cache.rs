//! The content-addressed artifact cache behind `futil build`.
//!
//! Each executed step stores its output under a key derived from the
//! *content* of its input plus the op's full fingerprint — never from
//! file paths or timestamps. Warm rebuilds therefore skip every step
//! whose input bytes and configuration are unchanged, and editing an
//! input re-runs only the steps whose (transitively recomputed) inputs
//! actually differ: a comment-only edit to a `.fuse` file re-runs the
//! frontend step, produces the same canonical Calyx, and every
//! downstream step hits the cache again.
//!
//! Layout: one file per artifact, `<op>-<key:016x>.<artifact_ext>`, in
//! a flat directory (default `.futil-cache`). Writes go through
//! [`calyx_service::write_atomic`] (tmp + rename), so a crashed or
//! concurrent build never leaves a torn artifact behind.

use calyx_core::errors::{CalyxResult, Error};
use calyx_service::{digest64, write_atomic};
use std::path::{Path, PathBuf};

/// An on-disk artifact cache rooted at one directory.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    root: PathBuf,
}

impl ArtifactCache {
    /// A cache rooted at `root`. The directory is created lazily on the
    /// first store.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ArtifactCache { root: root.into() }
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The cache key for running an op with `fingerprint` over `input`.
    pub fn key(fingerprint: &str, input: &str) -> u64 {
        digest64(format!("{fingerprint}\x1f{input}").as_bytes())
    }

    /// The on-disk path of an artifact.
    pub fn path(&self, op_name: &str, key: u64, artifact_ext: &str) -> PathBuf {
        self.root
            .join(format!("{op_name}-{key:016x}.{artifact_ext}"))
    }

    /// The cached artifact, if present and readable.
    pub fn lookup(&self, op_name: &str, key: u64, artifact_ext: &str) -> Option<String> {
        std::fs::read_to_string(self.path(op_name, key, artifact_ext)).ok()
    }

    /// Store an artifact (atomic tmp + rename).
    ///
    /// # Errors
    ///
    /// Returns an IO-flavored error when the cache directory cannot be
    /// created or the artifact cannot be written.
    pub fn store(
        &self,
        op_name: &str,
        key: u64,
        artifact_ext: &str,
        text: &str,
    ) -> CalyxResult<()> {
        std::fs::create_dir_all(&self.root).map_err(|e| {
            Error::malformed(format!(
                "cannot create cache directory `{}`: {e}",
                self.root.display()
            ))
        })?;
        let path = self.path(op_name, key, artifact_ext);
        let path_str = path.to_string_lossy();
        write_atomic(&path_str, text.as_bytes())
            .map_err(|e| Error::malformed(format!("cannot write `{path_str}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plan-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let cache = ArtifactCache::new(temp_root("roundtrip"));
        let key = ArtifactCache::key("op:v1", "input text");
        assert!(cache.lookup("demo", key, "futil").is_none());
        cache.store("demo", key, "futil", "artifact body").unwrap();
        assert_eq!(
            cache.lookup("demo", key, "futil").as_deref(),
            Some("artifact body")
        );
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn key_depends_on_both_fingerprint_and_input() {
        let base = ArtifactCache::key("op:v1", "input");
        assert_ne!(ArtifactCache::key("op:v2", "input"), base);
        assert_ne!(ArtifactCache::key("op:v1", "input2"), base);
        assert_eq!(ArtifactCache::key("op:v1", "input"), base);
        // The separator keeps (fingerprint, input) unambiguous.
        assert_ne!(
            ArtifactCache::key("op", ":v1input"),
            ArtifactCache::key("op:v1", "input")
        );
    }

    #[test]
    fn artifact_paths_are_flat_and_extension_tagged() {
        let cache = ArtifactCache::new("/tmp/c");
        let p = cache.path("dahlia-to-calyx", 0xabc, "futil");
        assert_eq!(
            p,
            PathBuf::from("/tmp/c/dahlia-to-calyx-0000000000000abc.futil")
        );
    }
}
