//! The [`PlanGraph`]: the fifth registry — typed states plus ops.
//!
//! Mirrors the pass/backend/frontend/lint registries' contract:
//! registration of duplicate or non-kebab-case names panics (they are
//! programming errors, not input errors), lookups of unknown names
//! return [`Error::Undefined`] listing the valid choices, and third
//! parties register their own states and ops on top of the standard
//! graph exactly like they register extra passes or backends.

use crate::op::{Op, OpSpec};
use crate::state::{State, StateId};
use calyx_core::errors::{CalyxResult, Error};
use calyx_core::utils::is_kebab_case;

/// The build graph: states (artifact kinds) and ops (transformations).
///
/// Construct the standard graph with
/// [`standard`](crate::derive::standard) (or
/// [`from_registries`](crate::derive::from_registries) over extended
/// registries), then plan routes with [`PlanGraph::plan`] and execute
/// them with [`execute`](crate::exec::execute).
#[derive(Default)]
pub struct PlanGraph {
    states: Vec<State>,
    ops: Vec<Op>,
}

impl PlanGraph {
    /// A graph with no states and no ops.
    pub fn empty() -> Self {
        PlanGraph::default()
    }

    /// Register a state.
    ///
    /// # Panics
    ///
    /// Panics when `name` is taken or not kebab-case, or when one of
    /// `extensions` is already claimed by another state — all
    /// compile-time constants in practice, so collisions are
    /// programming errors.
    pub fn add_state(
        &mut self,
        name: &str,
        description: &str,
        extensions: &[&str],
        artifact_ext: &str,
    ) -> StateId {
        assert!(is_kebab_case(name), "state name `{name}` is not kebab-case");
        assert!(
            self.state_id(name).is_none(),
            "state name `{name}` registered twice"
        );
        for ext in extensions {
            assert!(
                self.state_by_extension(ext).is_none(),
                "extension `.{ext}` claimed by two states (second: `{name}`)"
            );
        }
        self.states.push(State {
            name: name.to_string(),
            description: description.to_string(),
            extensions: extensions.iter().map(|e| (*e).to_string()).collect(),
            artifact_ext: artifact_ext.to_string(),
        });
        StateId(self.states.len() - 1)
    }

    /// Register an op.
    ///
    /// # Panics
    ///
    /// Panics when the name is taken or not kebab-case, or when either
    /// endpoint is not a state of this graph.
    pub fn add_op(&mut self, spec: OpSpec) {
        assert!(
            is_kebab_case(&spec.name),
            "op name `{}` is not kebab-case",
            spec.name
        );
        assert!(
            self.op_by_name(&spec.name).is_none(),
            "op name `{}` registered twice",
            spec.name
        );
        assert!(
            spec.from.0 < self.states.len() && spec.to.0 < self.states.len(),
            "op `{}` references a state outside this graph",
            spec.name
        );
        assert!(
            spec.from != spec.to,
            "op `{}` maps state `{}` to itself; self-loops can never be planned",
            spec.name,
            self.states[spec.from.0].name
        );
        self.ops.push(Op { spec });
    }

    /// All states, in registration order.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// All ops, in registration order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The state registered as `name`.
    pub fn state_id(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|s| s.name == name).map(StateId)
    }

    /// The state of `id`.
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id.0]
    }

    /// The op registered as `name`.
    pub fn op_by_name(&self, name: &str) -> Option<&Op> {
        self.ops.iter().find(|o| o.spec.name == name)
    }

    /// The state registered as `name`, or [`Error::Undefined`] listing
    /// every valid state — the message behind `--to`/`--from` typos.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] when `name` is unknown.
    pub fn expect_state(&self, name: &str) -> CalyxResult<StateId> {
        self.state_id(name).ok_or_else(|| {
            Error::undefined(format!(
                "state `{name}`; valid states: {}",
                self.states
                    .iter()
                    .map(|s| s.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }

    /// The state claiming file extension `ext` (without the leading
    /// dot; ASCII case-insensitive), if any.
    pub fn state_by_extension(&self, ext: &str) -> Option<StateId> {
        self.states
            .iter()
            .position(|s| s.extensions.iter().any(|e| e.eq_ignore_ascii_case(ext)))
            .map(StateId)
    }

    /// The state inferred from `path`'s file extension, if any —
    /// the plan-level face of the same extension-inference rule as
    /// [`FrontendRegistry::infer_for_path`](calyx_frontend::FrontendRegistry::infer_for_path)
    /// (frontend-shaped states copy their extensions from that registry
    /// at derivation time).
    pub fn infer_state(&self, path: &str) -> Option<StateId> {
        std::path::Path::new(path)
            .extension()
            .and_then(|e| e.to_str())
            .and_then(|ext| self.state_by_extension(ext))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpSpec, OptUse};

    fn two_states() -> (PlanGraph, StateId, StateId) {
        let mut g = PlanGraph::empty();
        let a = g.add_state("alpha", "first", &["alpha"], "alpha");
        let b = g.add_state("beta", "second", &[], "beta");
        (g, a, b)
    }

    fn spec(name: &str, from: StateId, to: StateId) -> OpSpec {
        OpSpec {
            name: name.into(),
            description: "test".into(),
            from,
            to,
            cost: 10,
            fingerprint: "t".into(),
            uses: OptUse::default(),
            run: Box::new(|s, _, _| Ok(s.to_string())),
        }
    }

    #[test]
    fn states_register_and_resolve() {
        let (g, a, _) = two_states();
        assert_eq!(g.state_id("alpha"), Some(a));
        assert_eq!(g.state(a).name, "alpha");
        assert_eq!(g.state_by_extension("ALPHA"), Some(a));
        assert_eq!(g.infer_state("x/y.alpha"), Some(a));
        assert!(g.infer_state("x/y.gamma").is_none());
        let err = g.expect_state("gamma").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("gamma") && msg.contains("alpha") && msg.contains("beta"),
            "{msg}"
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_state_panics() {
        let (mut g, ..) = two_states();
        g.add_state("alpha", "again", &[], "a");
    }

    #[test]
    #[should_panic(expected = "claimed by two states")]
    fn duplicate_extension_panics() {
        let (mut g, ..) = two_states();
        g.add_state("gamma", "third", &["alpha"], "g");
    }

    #[test]
    #[should_panic(expected = "not kebab-case")]
    fn non_kebab_state_panics() {
        PlanGraph::empty().add_state("Bad_Name", "x", &[], "x");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_op_panics() {
        let (mut g, a, b) = two_states();
        g.add_op(spec("go", a, b));
        g.add_op(spec("go", a, b));
    }

    #[test]
    #[should_panic(expected = "maps state `alpha` to itself")]
    fn self_loop_panics() {
        let (mut g, a, _) = two_states();
        g.add_op(spec("loop", a, a));
    }
}
