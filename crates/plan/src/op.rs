//! Ops: the edges of the build graph.
//!
//! An op transforms the artifact text of its `from` state into the
//! artifact text of its `to` state. Every op carries a *fingerprint* —
//! a stable string naming everything that could change its output
//! besides the input bytes (the pass expansion behind an alias, the
//! simulation cycle budget, generator `--fopt`s). The executor keys its
//! on-disk cache on `digest(input) ⊕ digest(fingerprint)`, so editing an
//! alias's expansion or passing a different `--fopt` invalidates exactly
//! the steps it affects.
//!
//! Ops are registered through [`OpSpec`] — either by the derivation in
//! [`derive`](crate::derive) (one op per frontend, pass alias, backend,
//! plus the composite lint op) or by third parties via
//! [`PlanGraph::add_op`](crate::PlanGraph::add_op), exactly like the
//! other four registries accept foreign entries.

use crate::state::StateId;
use calyx_backend::{BackendRegistry, ReportFormat};
use calyx_core::errors::CalyxResult;
use calyx_core::lint::LintRegistry;
use calyx_core::passes::PassRegistry;
use calyx_frontend::FrontendRegistry;
use calyx_service::ParseCache;

/// The registries an op may consult while running. Owned (registries
/// are cheap tables of function pointers), so executors need no
/// lifetime plumbing; drivers that register third-party frontends or
/// backends hand the same extended registries to both the graph
/// derivation and the environment.
#[derive(Default)]
pub struct ExecEnv {
    /// Frontends, for `<frontend>-to-calyx` ops.
    pub frontends: FrontendRegistry,
    /// Passes, for pipeline-alias ops and backend pre-pipelines.
    pub passes: PassRegistry,
    /// Backends, for `emit-<backend>` ops.
    pub backends: BackendRegistry,
    /// Lints, for the composite `check` op.
    pub lints: LintRegistry,
}

/// Driver-level options ops may consume — the `futil build` equivalents
/// of `--fopt`, `--cycles`, and `--format`.
#[derive(Debug, Clone)]
pub struct OpOpts {
    /// Generator parameters, as raw `(key, value)` pairs.
    pub fopts: Vec<(String, String)>,
    /// Simulation cycle budget.
    pub cycles: u64,
    /// Report format for report-style artifacts.
    pub format: ReportFormat,
}

impl Default for OpOpts {
    fn default() -> Self {
        OpOpts {
            fopts: Vec::new(),
            cycles: calyx_backend::BackendOpts::default().cycles,
            format: ReportFormat::Text,
        }
    }
}

/// Which [`OpOpts`] fields feed an op's cache fingerprint. Over-claiming
/// is safe (spurious invalidation); under-claiming serves stale
/// artifacts — when unsure, claim.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptUse {
    /// Output depends on the generator `--fopt` pairs.
    pub fopts: bool,
    /// Output depends on the simulation cycle budget.
    pub cycles: bool,
    /// Output depends on the report format.
    pub format: bool,
}

/// The function an op runs: input artifact text in, output artifact
/// text out.
pub type OpFn = Box<dyn Fn(&str, &ExecEnv, &OpOpts) -> CalyxResult<String>>;

/// A new op, as handed to [`PlanGraph::add_op`](crate::PlanGraph::add_op).
pub struct OpSpec {
    /// Unique kebab-case name.
    pub name: String,
    /// One-line description for `--list-ops` and the README table.
    pub description: String,
    /// State consumed.
    pub from: StateId,
    /// State produced.
    pub to: StateId,
    /// Routing cost (lower is preferred; ties break toward the earlier
    /// registration).
    pub cost: u32,
    /// Stable fingerprint of everything besides input bytes and
    /// [`OptUse`]-declared options that determines the output.
    pub fingerprint: String,
    /// Options that feed the cache key (see [`OptUse`]).
    pub uses: OptUse,
    /// The transformation itself.
    pub run: OpFn,
}

/// A registered op (same shape as [`OpSpec`]; stored by the graph).
pub struct Op {
    pub(crate) spec: OpSpec,
}

impl Op {
    /// Unique kebab-case name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// One-line description.
    pub fn description(&self) -> &str {
        &self.spec.description
    }

    /// State consumed.
    pub fn from(&self) -> StateId {
        self.spec.from
    }

    /// State produced.
    pub fn to(&self) -> StateId {
        self.spec.to
    }

    /// Routing cost.
    pub fn cost(&self) -> u32 {
        self.spec.cost
    }

    /// The full cache fingerprint under `opts`: the registered base
    /// plus every option the op declared it consumes, canonicalized
    /// (fopt pairs are keyed and sorted the same way the parse cache
    /// fingerprints them, so flag order never invalidates).
    pub fn fingerprint(&self, opts: &OpOpts) -> String {
        let mut fp = self.spec.fingerprint.clone();
        if self.spec.uses.fopts {
            fp.push('\x1e');
            fp.push_str(&ParseCache::fingerprint("fopts", &opts.fopts));
        }
        if self.spec.uses.cycles {
            fp.push('\x1e');
            fp.push_str(&opts.cycles.to_string());
        }
        if self.spec.uses.format {
            fp.push('\x1e');
            fp.push_str(match opts.format {
                ReportFormat::Text => "text",
                ReportFormat::Json => "json",
            });
        }
        fp
    }

    /// Run the op on `input`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying frontend/pass/backend/lint failure.
    pub fn run(&self, input: &str, env: &ExecEnv, opts: &OpOpts) -> CalyxResult<String> {
        (self.spec.run)(input, env, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(uses: OptUse) -> Op {
        Op {
            spec: OpSpec {
                name: "test-op".into(),
                description: "test".into(),
                from: StateId(0),
                to: StateId(1),
                cost: 10,
                fingerprint: "base:v1".into(),
                uses,
                run: Box::new(|s, _, _| Ok(s.to_uppercase())),
            },
        }
    }

    #[test]
    fn fingerprint_folds_in_exactly_the_declared_options() {
        let mut opts = OpOpts::default();
        let blind = op(OptUse::default());
        let base = blind.fingerprint(&opts);
        opts.cycles = 7;
        opts.fopts.push(("n".into(), "8".into()));
        opts.format = ReportFormat::Json;
        // An op that declares nothing is immune to every option.
        assert_eq!(blind.fingerprint(&opts), base);

        let all = op(OptUse {
            fopts: true,
            cycles: true,
            format: true,
        });
        let fp = all.fingerprint(&opts);
        assert_ne!(fp, base);
        opts.cycles = 8;
        assert_ne!(all.fingerprint(&opts), fp);
    }

    #[test]
    fn fopt_fingerprints_are_order_insensitive() {
        let op = op(OptUse {
            fopts: true,
            ..OptUse::default()
        });
        let mut a = OpOpts::default();
        a.fopts.push(("n".into(), "8".into()));
        a.fopts.push(("kernel".into(), "gemm".into()));
        let mut b = OpOpts::default();
        b.fopts.push(("kernel".into(), "gemm".into()));
        b.fopts.push(("n".into(), "8".into()));
        assert_eq!(op.fingerprint(&a), op.fingerprint(&b));
        b.fopts.push(("n".into(), "16".into()));
        assert_ne!(op.fingerprint(&a), op.fingerprint(&b));
    }
}
