//! The route planner: cheapest op sequence between two states.
//!
//! The graph is tiny (tens of states, tens of ops), so the planner is a
//! plain Dijkstra with linear min-extraction — deterministic by
//! construction: strict-improvement relaxation plus lowest-index
//! extraction means equal-cost routes resolve toward the earlier
//! registration, and cost ranking makes `lower` (cost 10) always beat
//! `lower-static` (cost 20) and `opt` (cost 30) for a bare
//! `--to calyx-lowered`.
//!
//! A goal with no route is an [`Error::Undefined`] listing the states
//! that *are* reachable from the start — the plan-level analogue of the
//! registries' "unknown name, valid choices are …" diagnostics.

use crate::graph::PlanGraph;
use crate::state::StateId;
use calyx_core::errors::{CalyxResult, Error};

/// A planned route: op indices into the graph, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Start state.
    pub from: StateId,
    /// Goal state.
    pub to: StateId,
    /// Ops to run, in order. Empty when `from == to` (the input already
    /// *is* the goal artifact).
    pub steps: Vec<usize>,
}

impl PlanGraph {
    /// The cheapest route from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] when no op sequence connects the
    /// two states; the message lists every state reachable from `from`
    /// so the caller can see which goals were valid.
    pub fn plan(&self, from: StateId, to: StateId) -> CalyxResult<Route> {
        let n = self.states().len();
        let mut dist: Vec<u64> = vec![u64::MAX; n];
        let mut via: Vec<Option<usize>> = vec![None; n];
        let mut done = vec![false; n];
        dist[from.0] = 0;
        // Lowest-index minimum extraction: deterministic tie-breaking.
        while let Some(u) = (0..n)
            .filter(|&i| !done[i] && dist[i] < u64::MAX)
            .min_by_key(|&i| dist[i])
        {
            done[u] = true;
            for (idx, op) in self.ops().iter().enumerate() {
                if op.from().0 == u {
                    let v = op.to().0;
                    let candidate = dist[u] + u64::from(op.cost());
                    if candidate < dist[v] {
                        dist[v] = candidate;
                        via[v] = Some(idx);
                    }
                }
            }
        }
        if dist[to.0] == u64::MAX {
            let reachable: Vec<&str> = (0..n)
                .filter(|&i| i != from.0 && dist[i] < u64::MAX)
                .map(|i| self.states()[i].name.as_str())
                .collect();
            let from_name = &self.state(from).name;
            let to_name = &self.state(to).name;
            let hint = if reachable.is_empty() {
                format!("no ops leave state `{from_name}`")
            } else {
                format!(
                    "states reachable from `{from_name}`: {}",
                    reachable.join(", ")
                )
            };
            return Err(Error::undefined(format!(
                "no route from state `{from_name}` to `{to_name}`; {hint}"
            )));
        }
        // Walk the predecessor chain back from the goal.
        let mut steps = Vec::new();
        let mut cur = to.0;
        while cur != from.0 {
            let idx = via[cur].expect("finite distance implies a predecessor");
            steps.push(idx);
            cur = self.ops()[idx].from().0;
        }
        steps.reverse();
        Ok(Route { from, to, steps })
    }

    /// Every state reachable from `from` (excluding `from` itself), in
    /// registration order — the same set the no-route error lists.
    pub fn reachable(&self, from: StateId) -> Vec<StateId> {
        let n = self.states().len();
        let mut seen = vec![false; n];
        seen[from.0] = true;
        let mut frontier = vec![from.0];
        while let Some(u) = frontier.pop() {
            for op in self.ops() {
                if op.from().0 == u && !seen[op.to().0] {
                    seen[op.to().0] = true;
                    frontier.push(op.to().0);
                }
            }
        }
        (0..n)
            .filter(|&i| i != from.0 && seen[i])
            .map(StateId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpSpec, OptUse};

    /// a --1-- b --1-- d, a --5-- c --1-- d, plus an expensive direct
    /// a --9-- d: the two-hop cheap route must win, deterministically.
    fn diamond() -> (PlanGraph, StateId, StateId) {
        let mut g = PlanGraph::empty();
        let a = g.add_state("a", "", &[], "a");
        let b = g.add_state("b", "", &[], "b");
        let c = g.add_state("c", "", &[], "c");
        let d = g.add_state("d", "", &[], "d");
        let _iso = g.add_state("island", "", &[], "i");
        let mut op = |name: &str, from, to, cost| {
            g.add_op(OpSpec {
                name: name.into(),
                description: String::new(),
                from,
                to,
                cost,
                fingerprint: name.into(),
                uses: OptUse::default(),
                run: Box::new(|s, _, _| Ok(s.to_string())),
            });
        };
        op("ab", a, b, 1);
        op("ac", a, c, 5);
        op("bd", b, d, 1);
        op("cd", c, d, 1);
        op("ad", a, d, 9);
        (g, a, d)
    }

    #[test]
    fn cheapest_route_wins() {
        let (g, a, d) = diamond();
        let route = g.plan(a, d).unwrap();
        let names: Vec<&str> = route.steps.iter().map(|&i| g.ops()[i].name()).collect();
        assert_eq!(names, ["ab", "bd"]);
    }

    #[test]
    fn same_state_is_an_empty_route() {
        let (g, a, _) = diamond();
        assert!(g.plan(a, a).unwrap().steps.is_empty());
    }

    #[test]
    fn no_route_lists_reachable_states() {
        let (g, a, d) = diamond();
        let island = g.state_id("island").unwrap();
        let msg = g.plan(a, island).unwrap_err().to_string();
        assert!(msg.contains("no route from state `a` to `island`"), "{msg}");
        for s in ["b", "c", "d"] {
            assert!(msg.contains(s), "missing `{s}` in {msg}");
        }
        // Nothing leaves the goal-only states.
        let msg = g.plan(d, a).unwrap_err().to_string();
        assert!(msg.contains("no ops leave state `d`"), "{msg}");
        assert_eq!(g.reachable(a).len(), 3);
        assert!(g.reachable(island).is_empty());
    }

    #[test]
    fn equal_costs_break_toward_earlier_registration() {
        let mut g = PlanGraph::empty();
        let a = g.add_state("a", "", &[], "a");
        let b = g.add_state("b", "", &[], "b");
        for name in ["first", "second"] {
            g.add_op(OpSpec {
                name: name.into(),
                description: String::new(),
                from: a,
                to: b,
                cost: 10,
                fingerprint: name.into(),
                uses: OptUse::default(),
                run: Box::new(|s, _, _| Ok(s.to_string())),
            });
        }
        let route = g.plan(a, b).unwrap();
        assert_eq!(g.ops()[route.steps[0]].name(), "first");
    }
}
