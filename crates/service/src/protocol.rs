//! The JSON-lines request/response protocol shared by `futil --batch`
//! manifests and `futil serve`.
//!
//! One request per line, one response per line. A request either
//! describes a *compile job* (what `futil` does once: frontend →
//! pipeline → backend) or asks for a *registry listing* (`list`), the
//! serve-mode equivalent of the driver's `--list-*` flags. Every
//! key is validated against [`REQUEST_KEYS`] — the same table the README
//! protocol spec is sync-tested against — so an unknown or misspelled
//! field produces a positioned error listing the valid keys instead of
//! being silently ignored.

use crate::json::{self, escape, Json};
use crate::metrics::StageTimes;

/// Every key a request object may carry, with the one-line description
/// the README protocol table quotes. The parser rejects anything else.
pub const REQUEST_KEYS: &[(&str, &str)] = &[
    (
        "input",
        "path to the source file; the frontend is inferred from its extension",
    ),
    ("source", "inline source text (alternative to `input`)"),
    (
        "name",
        "job label used in summaries and `--out-dir` file names",
    ),
    ("frontend", "frontend name (see `--list-frontends`)"),
    (
        "fopts",
        "object of generator options, one member per `--fopt key=value`",
    ),
    (
        "pipeline",
        "array of pass/alias names (default: the backend's required pipeline)",
    ),
    (
        "backend",
        "backend name (default: `calyx`; see `--list-backends`)",
    ),
    (
        "out",
        "output file path (default: `--out-dir/<name>.<ext>`, else inline/discard)",
    ),
    (
        "cycles",
        "simulation cycle budget for `sim`/`interp` (default 1000000)",
    ),
    (
        "format",
        "report format for report-style backends: `text` or `json`",
    ),
    ("timeout_ms", "per-job wall-clock timeout in milliseconds"),
    (
        "list",
        "registry listing request: `frontends`, `backends`, `passes`, or `lints`",
    ),
];

/// Every key a response object may carry, with the one-line description
/// the README protocol table quotes.
pub const RESPONSE_KEYS: &[(&str, &str)] = &[
    ("id", "0-based sequence number of the request this answers"),
    (
        "name",
        "the job's label (omitted when the request never named one)",
    ),
    ("status", "`ok`, `error`, `panic`, `timeout`, or `skipped`"),
    ("error", "what went wrong (statuses other than `ok`)"),
    (
        "cache",
        "parse-cache outcome for the job's source: `hit` or `miss`",
    ),
    (
        "parse_us",
        "wall time of the frontend/parse stage, in microseconds",
    ),
    (
        "passes_us",
        "wall time of the pass pipeline, in microseconds",
    ),
    ("emit_us", "wall time of backend emission, in microseconds"),
    ("total_us", "end-to-end job wall time, in microseconds"),
    (
        "out",
        "path the output was written to (jobs with an output path)",
    ),
    (
        "output",
        "the backend's output, inline (serve-mode jobs with no `out` path)",
    ),
    ("list", "which registry a listing response describes"),
    (
        "items",
        "listing payload: array of `{name, description}` objects",
    ),
];

/// The registries a `list` request may name, in the order the driver's
/// `--list-*` flags advertise them.
pub const LIST_KINDS: &[&str] = &["frontends", "backends", "passes", "lints"];

/// Terminal state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Compiled and emitted successfully.
    Ok,
    /// A structured compile error (bad input, unknown name, I/O, ...).
    Error,
    /// The job panicked; the worker survived and reported it.
    Panic,
    /// The job exceeded its wall-clock budget and was abandoned.
    Timeout,
    /// Never ran: an earlier failure aborted the batch (`--fail-fast`).
    Skipped,
}

impl Status {
    /// The protocol string for this status.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Error => "error",
            Status::Panic => "panic",
            Status::Timeout => "timeout",
            Status::Skipped => "skipped",
        }
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One compile job, as named by a manifest line, a serve request, or a
/// positional `futil --batch` input.
///
/// Every field is optional; [`JobDefaults`](crate::engine::JobDefaults)
/// (built from the driver's flags) fills the gaps at execution time.
#[derive(Debug, Clone, Default)]
pub struct JobRequest {
    /// Job label (summaries, `--out-dir` file names).
    pub name: Option<String>,
    /// Path to the source file.
    pub input: Option<String>,
    /// Inline source text.
    pub source: Option<String>,
    /// Frontend name; `None` infers from `input`'s extension.
    pub frontend: Option<String>,
    /// Generator options, `--fopt`-style.
    pub fopts: Vec<(String, String)>,
    /// Pass pipeline; `None` uses the backend's required pipeline.
    pub pipeline: Option<Vec<String>>,
    /// Backend name.
    pub backend: Option<String>,
    /// Output file path.
    pub out: Option<String>,
    /// Simulation cycle budget.
    pub cycles: Option<u64>,
    /// Report format (`text` / `json`) for report-style backends.
    pub format: Option<String>,
    /// Per-job timeout in milliseconds.
    pub timeout_ms: Option<u64>,
}

/// One parsed protocol request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compile something.
    Job(Box<JobRequest>),
    /// List a registry (`frontends`, `backends`, `passes`, `lints`).
    List(String),
}

fn valid_keys() -> String {
    REQUEST_KEYS
        .iter()
        .map(|(k, _)| *k)
        .collect::<Vec<_>>()
        .join(", ")
}

fn expect_str(m: &json::Member) -> Result<String, String> {
    m.value
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("key `{}` at column {} expects a string", m.key, m.col))
}

fn expect_u64(m: &json::Member) -> Result<u64, String> {
    m.value.as_u64().ok_or_else(|| {
        format!(
            "key `{}` at column {} expects a non-negative integer",
            m.key, m.col
        )
    })
}

impl Request {
    /// Parse and validate one JSON-lines request.
    ///
    /// # Errors
    ///
    /// Returns a message with the offending 1-based byte column for
    /// syntax errors, type mismatches, and unknown keys (listing the
    /// valid keys, which drivers surface as exit-2 style usage errors).
    pub fn from_json_line(line: &str) -> Result<Request, String> {
        let value = json::parse(line).map_err(|e| e.to_string())?;
        let members = value
            .as_obj()
            .ok_or_else(|| "a request must be a JSON object".to_string())?;

        let mut req = JobRequest::default();
        let mut list: Option<String> = None;
        for m in members {
            match m.key.as_str() {
                "name" => req.name = Some(expect_str(m)?),
                "input" => req.input = Some(expect_str(m)?),
                "source" => req.source = Some(expect_str(m)?),
                "frontend" => req.frontend = Some(expect_str(m)?),
                "backend" => req.backend = Some(expect_str(m)?),
                "out" => req.out = Some(expect_str(m)?),
                "cycles" => req.cycles = Some(expect_u64(m)?),
                "timeout_ms" => req.timeout_ms = Some(expect_u64(m)?),
                "format" => {
                    let f = expect_str(m)?;
                    if f != "text" && f != "json" {
                        return Err(format!(
                            "key `format` at column {} expects `text` or `json`, got `{f}`",
                            m.col
                        ));
                    }
                    req.format = Some(f);
                }
                "fopts" => {
                    let obj = m.value.as_obj().ok_or_else(|| {
                        format!("key `fopts` at column {} expects an object", m.col)
                    })?;
                    for opt in obj {
                        // Integral numbers are a natural spelling for
                        // dimension options; stringify them.
                        let value = match &opt.value {
                            Json::Str(s) => s.clone(),
                            other => other.as_u64().map(|n| n.to_string()).ok_or_else(|| {
                                format!(
                                    "fopt `{}` at column {} expects a string or integer",
                                    opt.key, opt.col
                                )
                            })?,
                        };
                        req.fopts.push((opt.key.clone(), value));
                    }
                }
                "pipeline" => {
                    let items = m.value.as_arr().ok_or_else(|| {
                        format!(
                            "key `pipeline` at column {} expects an array of pass names",
                            m.col
                        )
                    })?;
                    let mut names = Vec::with_capacity(items.len());
                    for item in items {
                        names.push(item.as_str().map(str::to_string).ok_or_else(|| {
                            format!("`pipeline` entries at column {} must be strings", m.col)
                        })?);
                    }
                    req.pipeline = Some(names);
                }
                "list" => {
                    let kind = expect_str(m)?;
                    if !LIST_KINDS.contains(&kind.as_str()) {
                        return Err(format!(
                            "key `list` at column {} expects one of: {}",
                            m.col,
                            LIST_KINDS.join(", ")
                        ));
                    }
                    list = Some(kind);
                }
                other => {
                    return Err(format!(
                        "unknown key `{other}` at column {}; valid keys: {}",
                        m.col,
                        valid_keys()
                    ));
                }
            }
        }

        if let Some(kind) = list {
            if members.len() > 1 {
                return Err("a `list` request takes no other keys".to_string());
            }
            return Ok(Request::List(kind));
        }
        if req.input.is_some() && req.source.is_some() {
            return Err("`input` and `source` are mutually exclusive".to_string());
        }
        if req.input.is_none() && req.source.is_none() && req.frontend.is_none() {
            return Err(
                "a job needs `input`, `source`, or an explicit `frontend` (generator frontends \
                 may run on empty source)"
                    .to_string(),
            );
        }
        Ok(Request::Job(Box::new(req)))
    }
}

/// One job's terminal record: status, diagnostics, stage timings, and
/// where the output went. Rendered as a single JSON line in serve mode
/// and embedded (sans `output`) in batch summaries.
#[derive(Debug, Clone)]
pub struct JobResponse {
    /// 0-based request sequence number.
    pub id: usize,
    /// Job label; empty renders no `name` field.
    pub name: String,
    /// Terminal status.
    pub status: Status,
    /// What went wrong, for statuses other than [`Status::Ok`].
    pub error: Option<String>,
    /// Parse-cache outcome (`"hit"` / `"miss"`), when the job parsed.
    pub cache: Option<&'static str>,
    /// Per-stage wall times, when the job completed.
    pub stages: Option<StageTimes>,
    /// Path the output was written to.
    pub out: Option<String>,
    /// Inline output (serve-mode jobs with no output path).
    pub output: Option<String>,
}

impl JobResponse {
    /// A response carrying only identity and status.
    pub fn new(id: usize, name: impl Into<String>, status: Status) -> Self {
        JobResponse {
            id,
            name: name.into(),
            status,
            error: None,
            cache: None,
            stages: None,
            out: None,
            output: None,
        }
    }

    /// A failing response with a message.
    pub fn fail(
        id: usize,
        name: impl Into<String>,
        status: Status,
        error: impl Into<String>,
    ) -> Self {
        let mut r = JobResponse::new(id, name, status);
        r.error = Some(error.into());
        r
    }

    /// True for [`Status::Ok`].
    pub fn is_ok(&self) -> bool {
        self.status == Status::Ok
    }

    /// Render as one JSON line (no trailing newline). Field order is
    /// fixed; absent optionals are omitted rather than `null`, and every
    /// key is drawn from [`RESPONSE_KEYS`].
    pub fn render(&self) -> String {
        let mut out = format!("{{\"id\": {}", self.id);
        if !self.name.is_empty() {
            out.push_str(&format!(", \"name\": {}", escape(&self.name)));
        }
        out.push_str(&format!(", \"status\": \"{}\"", self.status));
        if let Some(e) = &self.error {
            out.push_str(&format!(", \"error\": {}", escape(e)));
        }
        if let Some(c) = self.cache {
            out.push_str(&format!(", \"cache\": \"{c}\""));
        }
        if let Some(s) = &self.stages {
            out.push_str(&format!(
                ", \"parse_us\": {}, \"passes_us\": {}, \"emit_us\": {}, \"total_us\": {}",
                s.parse.as_micros(),
                s.passes.as_micros(),
                s.emit.as_micros(),
                s.total.as_micros()
            ));
        }
        if let Some(p) = &self.out {
            out.push_str(&format!(", \"out\": {}", escape(p)));
        }
        if let Some(o) = &self.output {
            out.push_str(&format!(", \"output\": {}", escape(o)));
        }
        out.push('}');
        out
    }
}

/// Render a listing response for `list` requests: the registry name and
/// its `{name, description}` items, all drawn from [`RESPONSE_KEYS`].
pub fn render_listing(id: usize, kind: &str, items: &[(String, String)]) -> String {
    let mut out = format!(
        "{{\"id\": {id}, \"status\": \"ok\", \"list\": {}",
        escape(kind)
    );
    out.push_str(", \"items\": [");
    for (i, (name, description)) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"name\": {}, \"description\": {}}}",
            escape(name),
            escape(description)
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn job(line: &str) -> JobRequest {
        match Request::from_json_line(line).unwrap() {
            Request::Job(j) => *j,
            Request::List(_) => panic!("expected a job"),
        }
    }

    #[test]
    fn full_job_request_parses() {
        let j = job(r#"{"input": "a.futil", "name": "a", "backend": "verilog",
                "pipeline": ["opt"], "fopts": {"kernel": "gemm", "n": 8},
                "cycles": 100, "format": "json", "timeout_ms": 500}"#);
        assert_eq!(j.input.as_deref(), Some("a.futil"));
        assert_eq!(j.name.as_deref(), Some("a"));
        assert_eq!(j.backend.as_deref(), Some("verilog"));
        assert_eq!(j.pipeline.as_deref(), Some(&["opt".to_string()][..]));
        assert_eq!(
            j.fopts,
            vec![
                ("kernel".to_string(), "gemm".to_string()),
                ("n".to_string(), "8".to_string())
            ]
        );
        assert_eq!((j.cycles, j.timeout_ms), (Some(100), Some(500)));
        assert_eq!(j.format.as_deref(), Some("json"));
    }

    #[test]
    fn unknown_keys_are_positioned_and_list_valid_keys() {
        let e = Request::from_json_line(r#"{"input": "a", "fronted": "calyx"}"#).unwrap_err();
        assert!(e.contains("unknown key `fronted` at column 16"), "{e}");
        for (k, _) in REQUEST_KEYS {
            assert!(e.contains(k), "valid-keys listing misses `{k}`: {e}");
        }
    }

    #[test]
    fn type_mismatches_are_positioned() {
        let e = Request::from_json_line(r#"{"input": 3}"#).unwrap_err();
        assert!(e.contains("`input` at column 2 expects a string"), "{e}");
        let e = Request::from_json_line(r#"{"input": "a", "cycles": "x"}"#).unwrap_err();
        assert!(e.contains("non-negative integer"), "{e}");
        let e = Request::from_json_line(r#"{"input": "a", "pipeline": "opt"}"#).unwrap_err();
        assert!(e.contains("array of pass names"), "{e}");
        let e = Request::from_json_line(r#"{"input": "a", "format": "yaml"}"#).unwrap_err();
        assert!(e.contains("`text` or `json`"), "{e}");
    }

    #[test]
    fn job_shape_is_validated() {
        let e = Request::from_json_line(r#"{"input": "a", "source": "b"}"#).unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
        let e = Request::from_json_line(r#"{"name": "empty"}"#).unwrap_err();
        assert!(e.contains("needs `input`, `source`"), "{e}");
        // A bare generator frontend is a valid job.
        let j = job(r#"{"frontend": "polybench", "fopts": {"kernel": "gemm"}}"#);
        assert!(j.input.is_none() && j.source.is_none());
    }

    #[test]
    fn list_requests_parse_and_reject_extras() {
        match Request::from_json_line(r#"{"list": "backends"}"#).unwrap() {
            Request::List(kind) => assert_eq!(kind, "backends"),
            Request::Job(_) => panic!("expected a listing"),
        }
        let e = Request::from_json_line(r#"{"list": "register"}"#).unwrap_err();
        assert!(e.contains("frontends, backends, passes, lints"), "{e}");
        let e = Request::from_json_line(r#"{"list": "passes", "input": "a"}"#).unwrap_err();
        assert!(e.contains("no other keys"), "{e}");
    }

    #[test]
    fn syntax_errors_carry_columns() {
        let e = Request::from_json_line("{\"input\": }").unwrap_err();
        assert!(e.contains("column 11"), "{e}");
        let e = Request::from_json_line("[1]").unwrap_err();
        assert!(e.contains("must be a JSON object"), "{e}");
    }

    #[test]
    fn response_render_is_pinned() {
        let mut r = JobResponse::new(3, "gemm", Status::Ok);
        r.cache = Some("hit");
        r.stages = Some(StageTimes {
            parse: Duration::from_micros(100),
            passes: Duration::from_micros(200),
            emit: Duration::from_micros(30),
            total: Duration::from_micros(345),
        });
        r.out = Some("out/gemm.sv".to_string());
        assert_eq!(
            r.render(),
            "{\"id\": 3, \"name\": \"gemm\", \"status\": \"ok\", \"cache\": \"hit\", \
             \"parse_us\": 100, \"passes_us\": 200, \"emit_us\": 30, \"total_us\": 345, \
             \"out\": \"out/gemm.sv\"}"
        );

        let r = JobResponse::fail(0, "", Status::Error, "boom \"quoted\"");
        assert_eq!(
            r.render(),
            "{\"id\": 0, \"status\": \"error\", \"error\": \"boom \\\"quoted\\\"\"}"
        );
    }

    /// Every key a rendered response uses must come from the documented
    /// table — the encoder cannot drift from the protocol spec.
    #[test]
    fn rendered_responses_use_only_documented_keys() {
        let mut r = JobResponse::new(1, "n", Status::Ok);
        r.error = Some("e".into());
        r.cache = Some("miss");
        r.stages = Some(StageTimes::default());
        r.out = Some("o".into());
        r.output = Some("text".into());
        for rendered in [
            r.render(),
            render_listing(0, "backends", &[("sim".into(), "d".into())]),
        ] {
            let v = crate::json::parse(&rendered).unwrap();
            for m in v.as_obj().unwrap() {
                assert!(
                    RESPONSE_KEYS.iter().any(|(k, _)| *k == m.key)
                        || m.key == "name"
                        || m.key == "description",
                    "undocumented response key `{}`",
                    m.key
                );
            }
        }
    }

    /// The hand-written protocol tables in the README must quote
    /// [`REQUEST_KEYS`] and [`RESPONSE_KEYS`] verbatim — the same
    /// strings the request validator lists when it rejects an unknown
    /// key — or the spec and the encoder drift apart. Same guard as the
    /// frontend/backend/lint README tables.
    #[test]
    fn readme_protocol_tables_quote_the_key_constants() {
        let readme = include_str!("../../../README.md");
        for (key, description) in REQUEST_KEYS.iter().chain(RESPONSE_KEYS) {
            let row = format!("| `{key}` | {description} |");
            assert!(
                readme.contains(&row),
                "README protocol table out of sync for `{key}`: expected row `{row}`"
            );
        }
        for kind in LIST_KINDS {
            assert!(
                readme.contains(&format!("`{kind}`")),
                "README never mentions list kind `{kind}`"
            );
        }
    }

    #[test]
    fn listing_renders_items() {
        let line = render_listing(
            2,
            "frontends",
            &[
                ("calyx".into(), "native".into()),
                ("dahlia".into(), "hll".into()),
            ],
        );
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("list").unwrap().as_str(), Some("frontends"));
        assert_eq!(v.get("items").unwrap().as_arr().unwrap().len(), 2);
    }
}
