//! A parallel compilation service over the Calyx registries.
//!
//! Single-shot `futil` pays its full startup cost — process spawn,
//! registry construction, frontend parse — for every kernel. Real
//! workloads (design-space sweeps, test suites, editor integrations)
//! compile *many* programs, most of them near-duplicates. This crate
//! turns the compiler into a service:
//!
//! - [`engine::CompileService`] executes [`protocol::JobRequest`]s —
//!   the same frontend → passes → backend stages as the driver, but
//!   terminating in a [`protocol::JobResponse`] value instead of a
//!   process exit, with per-stage wall times attached. Jobs are
//!   bulkheaded: panics become [`protocol::Status::Panic`] responses and
//!   over-budget jobs are abandoned as [`protocol::Status::Timeout`].
//! - [`cache::ParseCache`] shares frontend work between jobs, keyed by
//!   `(frontend + options, source digest)` and storing the parsed
//!   program's canonical text — which re-parses byte-identically, so
//!   cached and uncached jobs emit the same output.
//! - [`pool::WorkerPool`] runs jobs on N `std::thread` workers;
//!   [`engine::CompileService::run_batch`] aggregates a whole batch into
//!   a [`metrics::BatchSummary`] (kernels/sec, p50/p99 latency).
//! - [`server::serve`] speaks a JSON-lines protocol
//!   ([`protocol::REQUEST_KEYS`] / [`protocol::RESPONSE_KEYS`]) over any
//!   reader/writer pair — stdin/stdout for `futil serve`, a unix socket
//!   for [`server::serve_socket`].
//!
//! The `futil --batch` and `futil serve` driver modes are thin shells
//! over these pieces.
//!
//! ```
//! use calyx_service::engine::{CompileService, JobDefaults};
//! use calyx_service::protocol::JobRequest;
//!
//! let service = CompileService::new();
//! let job = JobRequest {
//!     source: Some("component main() -> () { cells {} wires {} control {} }".into()),
//!     backend: Some("verilog".into()),
//!     ..JobRequest::default()
//! };
//! let defaults = JobDefaults { inline_output: true, ..JobDefaults::default() };
//! let summary = service.run_batch(&[job.clone(), job], 2, false, &defaults);
//! assert!(summary.all_ok());
//! // Identical sources share one parse.
//! assert_eq!((summary.cache.hits, summary.cache.misses), (1, 1));
//! ```

pub mod cache;
pub mod engine;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod server;

pub use cache::{digest64, CacheStats, ParseCache};
pub use engine::{write_atomic, CompileService, JobDefaults};
pub use metrics::{percentile, BatchSummary, StageTimes};
pub use pool::{catch_job_panic, WorkerPool};
pub use protocol::{
    render_listing, JobRequest, JobResponse, Request, Status, LIST_KINDS, REQUEST_KEYS,
    RESPONSE_KEYS,
};
#[cfg(unix)]
pub use server::serve_socket;
pub use server::{serve, ServeOpts};
