//! The compilation engine: one [`CompileService`] executing
//! [`JobRequest`]s over the frontend/pass/backend registries.
//!
//! A service is a cheaply-clonable handle (`Arc` inside) shared by every
//! worker thread. Each job runs the same stages as a single-shot `futil`
//! invocation — resolve backend and frontend, ingest the source (through
//! the shared [`ParseCache`]), run the pass pipeline, validate, emit —
//! and terminates in a [`JobResponse`] instead of a process exit, with
//! per-stage wall times attached. Jobs are bulkheaded: a panicking pass
//! or generator becomes a [`Status::Panic`] response, and a job that
//! overruns its `timeout_ms` budget is abandoned ([`Status::Timeout`])
//! without taking its worker down.

use crate::cache::{digest64, CacheStats, ParseCache};
use crate::metrics::{BatchSummary, StageTimes};
use crate::pool::{catch_job_panic, WorkerPool};
use crate::protocol::{JobRequest, JobResponse, Status, LIST_KINDS};
use calyx_backend::{BackendOpts, BackendRegistry, DynBackend, ReportFormat};
use calyx_core::ir::{parse_context, Context, Printer};
use calyx_core::lint::LintRegistry;
use calyx_core::passes::{PassManager, PassRegistry};
use calyx_frontend::{FrontendOpts, FrontendRegistry};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Per-invocation defaults a [`JobRequest`]'s unset fields fall back to
/// — the batch/serve equivalent of `futil`'s own flags (`-f`, `--fopt`,
/// `-p`, `-b`, `--cycles`, `--format`, `--timeout`, `--out-dir`).
#[derive(Debug, Clone)]
pub struct JobDefaults {
    /// Frontend for jobs that name none (else inferred per job from the
    /// input extension, falling back to `calyx`).
    pub frontend: Option<String>,
    /// Base generator options; a job's own `fopts` append to (and thus
    /// override) these.
    pub fopts: Vec<(String, String)>,
    /// Pipeline for jobs that name none (else the backend's required
    /// pipeline, else `lower`).
    pub pipeline: Option<Vec<String>>,
    /// Backend for jobs that name none.
    pub backend: String,
    /// Simulation cycle budget.
    pub cycles: u64,
    /// Report format for report-style backends.
    pub format: ReportFormat,
    /// Wall-clock budget per job, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Directory for jobs without an `out` path: each writes
    /// `<out_dir>/<name>.<backend extension>`.
    pub out_dir: Option<String>,
    /// Return the output inline (serve mode) when a job has no output
    /// path; otherwise pathless output is discarded.
    pub inline_output: bool,
}

impl Default for JobDefaults {
    fn default() -> Self {
        JobDefaults {
            frontend: None,
            fopts: Vec::new(),
            pipeline: None,
            backend: "calyx".to_string(),
            cycles: BackendOpts::default().cycles,
            format: ReportFormat::Text,
            timeout_ms: None,
            out_dir: None,
            inline_output: false,
        }
    }
}

struct ServiceInner {
    frontends: FrontendRegistry,
    backends: BackendRegistry,
    cache: ParseCache,
}

/// A long-lived compilation service: warm registries plus the shared
/// [`ParseCache`]. Clones share everything.
#[derive(Clone)]
pub struct CompileService {
    inner: Arc<ServiceInner>,
}

impl Default for CompileService {
    fn default() -> Self {
        Self::new()
    }
}

/// The label a job is reported under: its `name`, else its input's file
/// stem, else `job<id>`.
fn job_name(req: &JobRequest, id: usize) -> String {
    if let Some(name) = &req.name {
        return name.clone();
    }
    req.input
        .as_deref()
        .and_then(|p| Path::new(p).file_stem())
        .and_then(|s| s.to_str())
        .map_or_else(|| format!("job{id}"), str::to_string)
}

/// Write `bytes` to `path` atomically: stream to a sibling `.tmp` and
/// rename into place, so a failure never leaves partial output (the same
/// discipline as `futil -o`). Shared with the plan executor's artifact
/// cache, which needs the same no-partial-files guarantee.
///
/// # Errors
///
/// Returns the underlying I/O error; the `.tmp` sibling is removed on
/// failure.
pub fn write_atomic(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = format!("{path}.tmp");
    let result = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

impl CompileService {
    /// A service over the standard registries and an empty cache.
    pub fn new() -> Self {
        Self::with_registries(FrontendRegistry::default(), BackendRegistry::default())
    }

    /// A service over custom registries — drivers that register extra
    /// frontends/backends, and tests that inject misbehaving ones.
    pub fn with_registries(frontends: FrontendRegistry, backends: BackendRegistry) -> Self {
        CompileService {
            inner: Arc::new(ServiceInner {
                frontends,
                backends,
                cache: ParseCache::new(),
            }),
        }
    }

    /// The shared parse cache's hit/miss counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// The `(name, description)` rows of one registry, for `list`
    /// requests and `--list-*` flags. `kind` is one of [`LIST_KINDS`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the valid kinds when `kind` is not one.
    pub fn list_items(&self, kind: &str) -> Result<Vec<(String, String)>, String> {
        match kind {
            "frontends" => Ok(self
                .inner
                .frontends
                .frontends()
                .iter()
                .map(|f| (f.name.to_string(), f.description.to_string()))
                .collect()),
            "backends" => Ok(self
                .inner
                .backends
                .backends()
                .iter()
                .map(|b| (b.name.to_string(), b.description.to_string()))
                .collect()),
            "passes" => {
                let registry = PassRegistry::default();
                let mut items: Vec<(String, String)> = registry
                    .passes()
                    .iter()
                    .map(|p| (p.name.to_string(), p.description.to_string()))
                    .collect();
                items.extend(registry.aliases().map(|(alias, expansion)| {
                    (
                        alias.to_string(),
                        format!("alias: {}", expansion.join(" -> ")),
                    )
                }));
                Ok(items)
            }
            "lints" => Ok(LintRegistry::default()
                .lints()
                .iter()
                .map(|l| (l.name.to_string(), l.description.to_string()))
                .collect()),
            other => Err(format!(
                "unknown listing `{other}`; valid kinds: {}",
                LIST_KINDS.join(", ")
            )),
        }
    }

    /// Execute one job to completion, honoring its timeout and catching
    /// its panics. This is the entry point workers call; it always
    /// returns a response, never unwinds.
    pub fn execute(&self, id: usize, req: &JobRequest, defaults: &JobDefaults) -> JobResponse {
        let cancelled = Arc::new(AtomicBool::new(false));
        let Some(ms) = req.timeout_ms.or(defaults.timeout_ms) else {
            return self.guarded(id, req, defaults, &cancelled);
        };
        // Run the job in a dedicated thread so this caller can give up
        // on it: a wedged pass must not wedge the worker. The abandoned
        // thread sees `cancelled` and discards its output.
        let name = job_name(req, id);
        let (tx, rx) = mpsc::channel();
        let service = self.clone();
        let req = req.clone();
        let defaults = defaults.clone();
        let flag = Arc::clone(&cancelled);
        let spawned = std::thread::Builder::new()
            .name(format!("futil-job-{id}"))
            .spawn(move || {
                let _ = tx.send(service.guarded(id, &req, &defaults, &flag));
            });
        if spawned.is_err() {
            return JobResponse::fail(id, name, Status::Error, "cannot spawn a job thread");
        }
        match rx.recv_timeout(Duration::from_millis(ms)) {
            Ok(resp) => resp,
            Err(_) => {
                cancelled.store(true, Ordering::SeqCst);
                JobResponse::fail(
                    id,
                    name,
                    Status::Timeout,
                    format!("job exceeded its {ms}ms timeout and was abandoned"),
                )
            }
        }
    }

    fn guarded(
        &self,
        id: usize,
        req: &JobRequest,
        defaults: &JobDefaults,
        cancelled: &AtomicBool,
    ) -> JobResponse {
        catch_job_panic(|| self.run_job(id, req, defaults, cancelled)).unwrap_or_else(|msg| {
            JobResponse::fail(
                id,
                job_name(req, id),
                Status::Panic,
                format!("job panicked: {msg}"),
            )
        })
    }

    /// One compile job, start to finish. Any structured failure becomes
    /// a [`Status::Error`] response naming the stage that rejected it.
    fn run_job(
        &self,
        id: usize,
        req: &JobRequest,
        defaults: &JobDefaults,
        cancelled: &AtomicBool,
    ) -> JobResponse {
        let started = Instant::now();
        let name = job_name(req, id);
        let fail = |msg: String| JobResponse::fail(id, name.clone(), Status::Error, msg);

        // Backend first: its required pipeline is the pipeline default.
        let bopts = BackendOpts {
            cycles: req.cycles.unwrap_or(defaults.cycles),
            format: match req.format.as_deref() {
                Some("json") => ReportFormat::Json,
                Some(_) => ReportFormat::Text,
                None => defaults.format,
            },
        };
        let backend_name = req.backend.as_deref().unwrap_or(&defaults.backend);
        let backend: Box<dyn DynBackend> = match self.inner.backends.get(backend_name, &bopts) {
            Ok(b) => b,
            Err(e) => return fail(e.to_string()),
        };

        // Frontend: explicit (job, then defaults), else inferred from
        // the input's extension, else the native parser — the same
        // shared rule as the driver and the plan graph.
        let frontend_name = self
            .inner
            .frontends
            .resolve_name(
                req.frontend.as_deref().or(defaults.frontend.as_deref()),
                req.input.as_deref(),
            )
            .0
            .to_string();
        let mut pairs = defaults.fopts.clone();
        pairs.extend(req.fopts.iter().cloned());
        let mut fopts = FrontendOpts::default();
        for (k, v) in &pairs {
            fopts.set(k.clone(), v.clone());
        }
        let frontend = match self.inner.frontends.get(&frontend_name, &fopts) {
            Ok(f) => f,
            Err(e) => return fail(e.to_string()),
        };

        // Source: a file, inline text, or empty (pure generators).
        let src = match (&req.input, &req.source) {
            (Some(path), _) => match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => return fail(format!("cannot read `{path}`: {e}")),
            },
            (None, Some(text)) => text.clone(),
            (None, None) => String::new(),
        };

        // Parse, through the shared cache. A hit replays the previously
        // parsed program's canonical text through the (cheap) native
        // parser; a miss runs the real frontend and caches the result.
        let parse_started = Instant::now();
        let fingerprint = ParseCache::fingerprint(&frontend_name, &pairs);
        let digest = digest64(src.as_bytes());
        let (mut ctx, cache_state): (Context, &'static str) =
            match self.inner.cache.lookup(&fingerprint, digest) {
                Some(canonical) => match parse_context(&canonical) {
                    Ok(ctx) => (ctx, "hit"),
                    Err(e) => return fail(format!("parse cache replay failed: {e}")),
                },
                None => {
                    let shown = req.input.as_deref().unwrap_or("<request>");
                    let ctx = match frontend.parse(&src) {
                        Ok(ctx) => ctx,
                        Err(e) => {
                            // Same caret diagnostics as single-shot futil,
                            // folded into the response's error string.
                            return fail(match e.caret_diagnostic(shown, &src) {
                                Some(diagnostic) => diagnostic,
                                None => format!("frontend `{frontend_name}`: {e}"),
                            });
                        }
                    };
                    self.inner
                        .cache
                        .insert(fingerprint, digest, Printer::print_context(&ctx));
                    (ctx, "miss")
                }
            };
        let parse_time = parse_started.elapsed();

        // Pipeline: the job's, else the invocation's, else what the
        // backend declares it needs (`lower` for shape-agnostic ones).
        let pipeline: Vec<String> = match req.pipeline.as_ref().or(defaults.pipeline.as_ref()) {
            Some(p) => p.clone(),
            None => {
                let required = backend.required_pipeline();
                if required.is_empty() {
                    vec!["lower".to_string()]
                } else {
                    required.iter().map(|s| (*s).to_string()).collect()
                }
            }
        };
        let names: Vec<&str> = pipeline.iter().map(String::as_str).collect();
        let mut pm = match PassManager::from_names(&names) {
            Ok(pm) => pm,
            Err(e) => return fail(e.to_string()),
        };
        let passes_started = Instant::now();
        if let Err(e) = pm.run(&mut ctx) {
            return fail(e.to_string());
        }
        let passes_time = passes_started.elapsed();

        // Validate, then emit into memory: batch outputs are per-job
        // files (or inline responses), never interleaved stdout.
        let emit_started = Instant::now();
        if let Err(e) = backend.validate(&ctx) {
            return fail(format!(
                "backend `{}` precondition failed: {e}",
                backend.name()
            ));
        }
        let mut buffer = Vec::new();
        if let Err(e) = backend.emit(&ctx, &mut buffer) {
            return fail(e.to_string());
        }
        let emit_time = emit_started.elapsed();

        let mut resp = JobResponse::new(id, name.clone(), Status::Ok);
        resp.cache = Some(cache_state);
        let out_path = req.out.clone().or_else(|| {
            defaults
                .out_dir
                .as_ref()
                .map(|dir| format!("{dir}/{name}.{}", backend.extension()))
        });
        match out_path {
            // A timed-out job may still be running here, abandoned; it
            // must not race a retry for the output file.
            Some(path) if !cancelled.load(Ordering::SeqCst) => {
                if let Err(e) = write_atomic(&path, &buffer) {
                    return fail(format!("cannot write `{path}`: {e}"));
                }
                resp.out = Some(path);
            }
            Some(_) => {}
            None if defaults.inline_output => {
                resp.output = Some(String::from_utf8_lossy(&buffer).into_owned());
            }
            None => {}
        }
        resp.stages = Some(StageTimes {
            parse: parse_time,
            passes: passes_time,
            emit: emit_time,
            total: started.elapsed(),
        });
        resp
    }

    /// Run a whole batch on `jobs` workers and aggregate the responses.
    ///
    /// With `fail_fast`, the first failure aborts the queue: jobs not
    /// yet started report [`Status::Skipped`] (in-flight ones finish).
    /// The summary's cache counters cover this batch only.
    pub fn run_batch(
        &self,
        reqs: &[JobRequest],
        jobs: usize,
        fail_fast: bool,
        defaults: &JobDefaults,
    ) -> BatchSummary {
        let started = Instant::now();
        let before = self.cache_stats();
        let abort = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<JobResponse>();
        {
            let pool = WorkerPool::new(jobs);
            for (id, req) in reqs.iter().enumerate() {
                let service = self.clone();
                let req = req.clone();
                let defaults = defaults.clone();
                let abort = Arc::clone(&abort);
                let tx = tx.clone();
                pool.submit(move || {
                    let resp = if abort.load(Ordering::SeqCst) {
                        JobResponse::fail(
                            id,
                            job_name(&req, id),
                            Status::Skipped,
                            "not run: an earlier job failed (--fail-fast)",
                        )
                    } else {
                        service.execute(id, &req, &defaults)
                    };
                    if fail_fast && !resp.is_ok() && resp.status != Status::Skipped {
                        abort.store(true, Ordering::SeqCst);
                    }
                    let _ = tx.send(resp);
                });
            }
        } // joins the workers: every job has reported
        drop(tx);
        let mut results: Vec<JobResponse> = rx.iter().collect();
        results.sort_unstable_by_key(|r| r.id);
        let after = self.cache_stats();
        BatchSummary {
            results,
            wall: started.elapsed(),
            cache: CacheStats {
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = "component main() -> () {
        cells { r = std_reg(8); }
        wires { group g { r.in = 8'd7; r.write_en = 1'd1; g[done] = r.done; } }
        control { g; }
      }";

    fn source_job(backend: &str) -> JobRequest {
        JobRequest {
            source: Some(PROGRAM.to_string()),
            backend: Some(backend.to_string()),
            ..JobRequest::default()
        }
    }

    #[test]
    fn a_job_compiles_like_single_shot_futil() {
        let service = CompileService::new();
        let defaults = JobDefaults {
            inline_output: true,
            ..JobDefaults::default()
        };
        let resp = service.execute(0, &source_job("verilog"), &defaults);
        assert_eq!(resp.status, Status::Ok, "{:?}", resp.error);
        assert_eq!(resp.cache, Some("miss"));
        assert!(resp.output.as_deref().unwrap().contains("module main"));
        let stages = resp.stages.unwrap();
        assert!(stages.total >= stages.passes);

        // Same source again: a cache hit, byte-identical output.
        let again = service.execute(1, &source_job("verilog"), &defaults);
        assert_eq!(again.cache, Some("hit"));
        assert_eq!(again.output, resp.output);
        assert_eq!(service.cache_stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn structured_failures_name_the_stage() {
        let service = CompileService::new();
        let defaults = JobDefaults::default();

        let resp = service.execute(0, &source_job("verilgo"), &defaults);
        assert_eq!(resp.status, Status::Error);
        assert!(resp.error.as_deref().unwrap().contains("valid backends"));

        let mut bad_pass = source_job("calyx");
        bad_pass.pipeline = Some(vec!["no-such-pass".to_string()]);
        let resp = service.execute(1, &bad_pass, &defaults);
        assert_eq!(resp.status, Status::Error);

        let mut bad_src = source_job("calyx");
        bad_src.source = Some("component main( {".to_string());
        let resp = service.execute(2, &bad_src, &defaults);
        assert_eq!(resp.status, Status::Error);
        // Parse failures carry the caret diagnostic.
        assert!(
            resp.error.as_deref().unwrap().contains('^'),
            "{:?}",
            resp.error
        );

        let missing = JobRequest {
            input: Some("/no/such/file.futil".to_string()),
            ..JobRequest::default()
        };
        let resp = service.execute(3, &missing, &defaults);
        assert_eq!(resp.status, Status::Error);
        assert!(resp.error.as_deref().unwrap().contains("cannot read"));
    }

    #[test]
    fn generator_jobs_need_no_source() {
        let service = CompileService::new();
        let req = JobRequest {
            frontend: Some("systolic".to_string()),
            fopts: vec![
                ("rows".to_string(), "2".to_string()),
                ("cols".to_string(), "2".to_string()),
                ("inner".to_string(), "2".to_string()),
            ],
            backend: Some("verilog".to_string()),
            name: Some("sa2x2".to_string()),
            ..JobRequest::default()
        };
        let defaults = JobDefaults {
            inline_output: true,
            ..JobDefaults::default()
        };
        let resp = service.execute(0, &req, &defaults);
        assert_eq!(resp.status, Status::Ok, "{:?}", resp.error);
        assert_eq!(resp.name, "sa2x2");
        assert!(resp.output.as_deref().unwrap().contains("module"));
    }

    #[test]
    fn batches_preserve_job_order_and_count_cache_deltas() {
        let service = CompileService::new();
        let reqs: Vec<JobRequest> = (0..6).map(|_| source_job("calyx")).collect();
        let summary = service.run_batch(&reqs, 3, false, &JobDefaults::default());
        assert_eq!(summary.results.len(), 6);
        assert!(summary.all_ok());
        for (i, r) in summary.results.iter().enumerate() {
            assert_eq!(r.id, i);
        }
        // Six identical sources: one miss, five hits — regardless of
        // which worker got there first.
        assert_eq!(summary.cache.misses, 1);
        assert_eq!(summary.cache.hits, 5);

        // A second batch reuses the warm cache but reports only its own
        // lookups.
        let summary = service.run_batch(&reqs[..2], 2, false, &JobDefaults::default());
        assert_eq!(summary.cache, CacheStats { hits: 2, misses: 0 });
    }

    #[test]
    fn fail_fast_skips_later_jobs() {
        let service = CompileService::new();
        let mut reqs: Vec<JobRequest> = Vec::new();
        reqs.push(JobRequest {
            source: Some("component main( {".to_string()),
            ..JobRequest::default()
        });
        // Enough trailing work that the queue cannot drain before the
        // failure lands.
        for _ in 0..16 {
            reqs.push(source_job("calyx"));
        }
        let summary = service.run_batch(&reqs, 1, true, &JobDefaults::default());
        assert_eq!(summary.failed(), 1);
        assert_eq!(summary.skipped(), 16, "{}", summary.render_text(false));
        assert!(!summary.all_ok());
    }

    /// A frontend that stalls in `parse` long past any test deadline —
    /// a deterministic stand-in for a job that will not finish in time.
    struct StallFrontend;

    impl calyx_frontend::Frontend for StallFrontend {
        const NAME: &'static str = "stall";
        const DESCRIPTION: &'static str = "sleeps in parse (test only)";

        fn extensions() -> &'static [&'static str] {
            &[]
        }

        fn from_opts(_: &calyx_frontend::FrontendOpts) -> calyx_core::errors::CalyxResult<Self> {
            Ok(StallFrontend)
        }

        fn parse(&self, _: &str) -> calyx_core::errors::CalyxResult<Context> {
            std::thread::sleep(std::time::Duration::from_secs(5));
            calyx_core::ir::parse_context("component main() -> () { cells {} wires {} control {} }")
        }
    }

    #[test]
    fn timeouts_abandon_the_job() {
        let mut frontends = calyx_frontend::FrontendRegistry::default();
        frontends.register::<StallFrontend>();
        let service =
            CompileService::with_registries(frontends, calyx_backend::BackendRegistry::default());
        let req = JobRequest {
            frontend: Some("stall".to_string()),
            source: Some(String::new()),
            timeout_ms: Some(10),
            ..JobRequest::default()
        };
        let resp = service.execute(0, &req, &JobDefaults::default());
        assert_eq!(resp.status, Status::Timeout, "{:?}", resp.error);
        assert!(resp.error.as_deref().unwrap().contains("10ms"));
    }

    #[test]
    fn listings_cover_every_kind() {
        let service = CompileService::new();
        for kind in LIST_KINDS {
            let items = service.list_items(kind).unwrap();
            assert!(!items.is_empty(), "no items for `{kind}`");
        }
        assert_eq!(service.list_items("frontends").unwrap()[0].0, "calyx");
        let err = service.list_items("register").unwrap_err();
        assert!(err.contains("valid kinds"), "{err}");
    }
}
