//! Throughput and latency accounting for batch runs.
//!
//! Each job records wall times per stage ([`StageTimes`]); the batch
//! aggregates them into a [`BatchSummary`] reporting kernels/sec and
//! nearest-rank p50/p99 job latency, rendered as a human-readable text
//! block or a schema-pinned JSON object (`futil --batch --format json`).

use crate::cache::CacheStats;
use crate::protocol::{JobResponse, Status};
use std::time::Duration;

/// Wall-clock time spent in each stage of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTimes {
    /// Frontend ingestion (cache lookup + parse/generation).
    pub parse: Duration,
    /// The pass pipeline.
    pub passes: Duration,
    /// Backend validation + emission.
    pub emit: Duration,
    /// End-to-end job time (≥ the sum of the stages).
    pub total: Duration,
}

/// Nearest-rank percentile of an **ascending-sorted** slice: the
/// smallest element ≥ `pct`% of the population. Empty input is zero.
pub fn percentile(sorted: &[Duration], pct: u32) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (sorted.len() as u64 * u64::from(pct)).div_ceil(100);
    sorted[(rank.max(1) as usize - 1).min(sorted.len() - 1)]
}

/// The outcome of one batch: every job's response plus batch-level wall
/// time and parse-cache counters.
#[derive(Debug, Clone)]
pub struct BatchSummary {
    /// Per-job responses, in job order.
    pub results: Vec<JobResponse>,
    /// Wall time from first dispatch to last completion.
    pub wall: Duration,
    /// Parse-cache activity during the batch.
    pub cache: CacheStats,
}

impl BatchSummary {
    fn count(&self, f: impl Fn(Status) -> bool) -> usize {
        self.results.iter().filter(|r| f(r.status)).count()
    }

    /// Jobs that compiled and emitted successfully.
    pub fn ok(&self) -> usize {
        self.count(|s| s == Status::Ok)
    }

    /// Jobs that failed (error, panic, or timeout).
    pub fn failed(&self) -> usize {
        self.count(|s| matches!(s, Status::Error | Status::Panic | Status::Timeout))
    }

    /// Jobs never run because `--fail-fast` aborted the batch.
    pub fn skipped(&self) -> usize {
        self.count(|s| s == Status::Skipped)
    }

    /// True when every job succeeded (drivers exit 0 on this).
    pub fn all_ok(&self) -> bool {
        self.ok() == self.results.len()
    }

    /// Completed-job latencies (total stage time), ascending.
    pub fn latencies(&self) -> Vec<Duration> {
        let mut v: Vec<Duration> = self
            .results
            .iter()
            .filter_map(|r| r.stages.map(|s| s.total))
            .collect();
        v.sort_unstable();
        v
    }

    /// Successful jobs per wall-clock second.
    pub fn kernels_per_sec(&self) -> f64 {
        self.ok() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// The human-readable summary. With `detail`, appends the per-job
    /// stage table (`futil --batch --time`/`--stats` aggregate per-job
    /// timings here instead of interleaving stderr lines).
    pub fn render_text(&self, detail: bool) -> String {
        let lat = self.latencies();
        let mut out = format!(
            "batch: {} jobs, {} ok, {} failed, {} skipped in {:.3?} ({:.1} kernels/sec)\n\
             latency: p50 {:.3?}  p99 {:.3?}\n\
             parse cache: {} hits, {} misses",
            self.results.len(),
            self.ok(),
            self.failed(),
            self.skipped(),
            self.wall,
            self.kernels_per_sec(),
            percentile(&lat, 50),
            percentile(&lat, 99),
            self.cache.hits,
            self.cache.misses,
        );
        if detail {
            out.push_str(&format!(
                "\n  {:>4}  {:<8}{:<6}{:>10}{:>10}{:>10}{:>10}  {}",
                "id", "status", "cache", "parse", "passes", "emit", "total", "name"
            ));
            for r in &self.results {
                let t = |d: Option<Duration>| match d {
                    Some(d) => format!("{d:.3?}"),
                    None => "-".to_string(),
                };
                out.push_str(&format!(
                    "\n  {:>4}  {:<8}{:<6}{:>10}{:>10}{:>10}{:>10}  {}",
                    r.id,
                    r.status.to_string(),
                    r.cache.unwrap_or("-"),
                    t(r.stages.map(|s| s.parse)),
                    t(r.stages.map(|s| s.passes)),
                    t(r.stages.map(|s| s.emit)),
                    t(r.stages.map(|s| s.total)),
                    r.name,
                ));
            }
        }
        for r in self.results.iter().filter(|r| !r.is_ok()) {
            let msg = r.error.as_deref().unwrap_or("unknown failure");
            // First line only: caret diagnostics span several lines.
            let first = msg.lines().next().unwrap_or(msg);
            out.push_str(&format!(
                "\n  job {} ({}): {}: {first}",
                r.id, r.name, r.status
            ));
        }
        out
    }

    /// The machine-readable summary: a single JSON object whose schema
    /// (keys, nesting, and per-job records) is pinned by golden tests —
    /// add fields rather than changing these.
    ///
    /// ```json
    /// {
    ///   "jobs": 2, "ok": 2, "failed": 0, "skipped": 0,
    ///   "wall_us": 3120, "kernels_per_sec": 641.0,
    ///   "p50_us": 1490, "p99_us": 1630,
    ///   "parse_cache": {"hits": 1, "misses": 1},
    ///   "results": [
    ///     {"id": 0, "name": "gemm", "status": "ok", "cache": "miss",
    ///      "parse_us": 900, "passes_us": 400, "emit_us": 150,
    ///      "total_us": 1490, "out": "out/gemm.sv"}
    ///   ]
    /// }
    /// ```
    pub fn render_json(&self) -> String {
        let lat = self.latencies();
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"jobs\": {}, \"ok\": {}, \"failed\": {}, \"skipped\": {},\n",
            self.results.len(),
            self.ok(),
            self.failed(),
            self.skipped()
        ));
        out.push_str(&format!(
            "  \"wall_us\": {}, \"kernels_per_sec\": {:.1},\n",
            self.wall.as_micros(),
            self.kernels_per_sec()
        ));
        out.push_str(&format!(
            "  \"p50_us\": {}, \"p99_us\": {},\n",
            percentile(&lat, 50).as_micros(),
            percentile(&lat, 99).as_micros()
        ));
        out.push_str(&format!(
            "  \"parse_cache\": {{\"hits\": {}, \"misses\": {}}},\n",
            self.cache.hits, self.cache.misses
        ));
        out.push_str("  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            out.push_str(&r.render());
        }
        if !self.results.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50), Duration::ZERO);
        let one = [us(7)];
        assert_eq!(percentile(&one, 50), us(7));
        assert_eq!(percentile(&one, 99), us(7));
        let v: Vec<Duration> = (1..=100).map(us).collect();
        assert_eq!(percentile(&v, 50), us(50));
        assert_eq!(percentile(&v, 99), us(99));
        assert_eq!(percentile(&v, 100), us(100));
        let v: Vec<Duration> = (1..=4).map(us).collect();
        assert_eq!(percentile(&v, 50), us(2));
        assert_eq!(percentile(&v, 99), us(4));
    }

    fn sample() -> BatchSummary {
        let mut ok = JobResponse::new(0, "a", Status::Ok);
        ok.cache = Some("miss");
        ok.stages = Some(StageTimes {
            parse: us(900),
            passes: us(400),
            emit: us(150),
            total: us(1490),
        });
        let mut ok2 = JobResponse::new(1, "b", Status::Ok);
        ok2.cache = Some("hit");
        ok2.stages = Some(StageTimes {
            parse: us(100),
            passes: us(410),
            emit: us(160),
            total: us(700),
        });
        let bad = JobResponse::fail(2, "c", Status::Error, "no such kernel");
        BatchSummary {
            results: vec![ok, ok2, bad],
            wall: Duration::from_millis(2),
            cache: CacheStats { hits: 1, misses: 1 },
        }
    }

    #[test]
    fn counts_and_rates() {
        let s = sample();
        assert_eq!((s.ok(), s.failed(), s.skipped()), (2, 1, 0));
        assert!(!s.all_ok());
        assert_eq!(s.latencies(), vec![us(700), us(1490)]);
        assert!(
            (s.kernels_per_sec() - 1000.0).abs() < 1.0,
            "{}",
            s.kernels_per_sec()
        );
    }

    #[test]
    fn text_summary_reports_failures_and_detail() {
        let s = sample();
        let text = s.render_text(false);
        assert!(
            text.starts_with("batch: 3 jobs, 2 ok, 1 failed, 0 skipped in 2"),
            "{text}"
        );
        assert!(text.contains("(1000.0 kernels/sec)"), "{text}");
        assert!(
            text.contains("latency: p50 700.000µs  p99 1.490ms"),
            "{text}"
        );
        assert!(text.contains("parse cache: 1 hits, 1 misses"), "{text}");
        assert!(text.contains("job 2 (c): error: no such kernel"), "{text}");
        assert!(!text.contains("passes"), "{text}");

        let detail = s.render_text(true);
        assert!(detail.contains("passes"), "{detail}");
        assert!(detail.contains("miss"), "{detail}");
        assert!(detail.contains("1.490ms"), "{detail}");
    }

    /// The JSON schema is load-bearing: CI and external tooling parse
    /// it. This golden pins the exact bytes for a fixed summary.
    #[test]
    fn json_summary_schema_is_pinned() {
        let s = sample();
        assert_eq!(
            s.render_json(),
            "{\n  \"jobs\": 3, \"ok\": 2, \"failed\": 1, \"skipped\": 0,\n  \"wall_us\": 2000, \"kernels_per_sec\": 1000.0,\n  \"p50_us\": 700, \"p99_us\": 1490,\n  \"parse_cache\": {\"hits\": 1, \"misses\": 1},\n  \"results\": [\n    {\"id\": 0, \"name\": \"a\", \"status\": \"ok\", \"cache\": \"miss\", \"parse_us\": 900, \"passes_us\": 400, \"emit_us\": 150, \"total_us\": 1490},\n    {\"id\": 1, \"name\": \"b\", \"status\": \"ok\", \"cache\": \"hit\", \"parse_us\": 100, \"passes_us\": 410, \"emit_us\": 160, \"total_us\": 700},\n    {\"id\": 2, \"name\": \"c\", \"status\": \"error\", \"error\": \"no such kernel\"}\n  ]\n}"
        );
        // And it parses back with the crate's own reader.
        let v = crate::json::parse(&s.render_json()).unwrap();
        assert_eq!(v.get("jobs").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("results").unwrap().as_arr().unwrap().len(), 3);
    }
}
