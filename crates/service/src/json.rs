//! A minimal JSON reader/writer for the service protocol.
//!
//! The workspace is offline (no serde), and the protocol only needs a
//! small, predictable subset of JSON: one object per line, string and
//! integer scalars, one level of nesting for `fopts`/`pipeline`. This
//! module parses a full JSON value into [`Json`] — tracking the 1-based
//! byte column of every object key so unknown-field diagnostics can
//! point at the offending key — and renders values back out with the
//! same escaping rules the lint sink pinned in PR 6.

use std::fmt;

/// A parsed JSON value.
///
/// Object members keep their textual order (and each key's source
/// column) rather than collapsing into a map, so diagnostics and golden
/// tests see exactly what was written.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; the protocol only uses non-negative integers.
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<Member>),
}

/// One `"key": value` member of a JSON object.
#[derive(Debug, Clone, PartialEq)]
pub struct Member {
    /// The (unescaped) key.
    pub key: String,
    /// 1-based byte column of the key's opening quote, for diagnostics.
    pub col: usize,
    /// The member's value.
    pub value: Json,
}

/// A parse failure: what went wrong and the 1-based byte column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Explanation of what went wrong.
    pub msg: String,
    /// 1-based byte column of the offending character.
    pub col: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "column {}: {}", self.col, self.msg)
    }
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with no
    /// fractional part (the only numbers the protocol uses).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[Member]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Look up a key in an object (last occurrence wins, mirroring
    /// `FrontendOpts`); `None` for non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .rev()
            .find(|m| m.key == key)
            .map(|m| &m.value)
    }

    /// Render the value as compact JSON (keys in stored order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, m) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&escape(&m.key));
                    out.push_str(": ");
                    m.value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Encode a string as a JSON string literal (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] with the 1-based byte column of the first
/// offending character.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl fmt::Display) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            col: self.pos + 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let col = self.pos + 1;
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push(Member { key, col, value });
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        other => {
                            self.pos -= 1;
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)));
                        }
                    }
                }
                Some(_) => {
                    // Copy one whole UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn objects_keep_order_and_key_columns() {
        let v = parse(r#"{"b": 1, "a": {"x": [1, 2]}}"#).unwrap();
        let members = v.as_obj().unwrap();
        assert_eq!(members[0].key, "b");
        assert_eq!(members[0].col, 2);
        assert_eq!(members[1].key, "a");
        assert_eq!(members[1].col, 10);
        assert_eq!(v.get("b").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("a")
                .unwrap()
                .get("x")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn string_escapes_decode() {
        let v = parse(r#""a\n\t\"\\\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\A\u{1F600}"));
    }

    #[test]
    fn errors_carry_columns() {
        let e = parse(r#"{"a": }"#).unwrap_err();
        assert_eq!(e.col, 7);
        assert!(e.msg.contains("unexpected character"), "{e}");

        let e = parse(r#"{"a": 1} x"#).unwrap_err();
        assert_eq!(e.col, 10);
        assert!(e.msg.contains("trailing"), "{e}");

        let e = parse("").unwrap_err();
        assert!(e.msg.contains("end of input"), "{e}");
    }

    #[test]
    fn render_round_trips() {
        let src = r#"{"a": 1, "b": [true, "x\ny"], "c": null}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn escape_matches_lint_sink_rules() {
        assert_eq!(escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }
}
