//! `futil serve`: the long-lived JSON-lines compilation server.
//!
//! One request per input line, one response per output line (see
//! [`protocol`](crate::protocol) for the key tables). The server keeps
//! the registries and the [`ParseCache`](crate::cache::ParseCache) warm
//! across requests, dispatches jobs to a [`WorkerPool`], and **streams
//! responses as jobs finish** — under `--jobs N` the order responses
//! come back is completion order, and the `id` field ties each response
//! to its request. Malformed requests produce an immediate
//! `status: "error"` response; they never terminate the server. EOF on
//! the request stream is the shutdown signal: the server drains every
//! in-flight job, flushes, and returns.

use crate::engine::{CompileService, JobDefaults};
use crate::pool::WorkerPool;
use crate::protocol::{render_listing, JobResponse, Request, Status};
use parking_lot::Mutex;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Worker threads compiling concurrently.
    pub jobs: usize,
    /// Defaults for request fields left unset (set
    /// [`JobDefaults::inline_output`] to return output in responses).
    pub defaults: JobDefaults,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            jobs: WorkerPool::default_jobs(),
            defaults: JobDefaults {
                inline_output: true,
                ..JobDefaults::default()
            },
        }
    }
}

fn respond<W: Write>(writer: &Mutex<W>, line: &str) {
    // A reader that hangs up mid-stream is that connection's problem,
    // not the server's; remaining responses are dropped on the floor.
    let mut w = writer.lock();
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}

/// Serve requests from `reader` until EOF, writing one response line per
/// request to `writer`. Returns the writer after every in-flight job has
/// drained, so callers can keep using the stream (or assert on it).
///
/// Blank lines are ignored. Request `id`s are assigned in arrival order,
/// starting at 0, counting malformed requests too.
///
/// # Errors
///
/// Only transport failures on `reader` are errors — bad requests and
/// failed jobs are *responses*.
pub fn serve<R, W>(
    service: &CompileService,
    reader: R,
    writer: W,
    opts: &ServeOpts,
) -> std::io::Result<W>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let writer = Arc::new(Mutex::new(writer));
    let mut next_id = 0;
    {
        let pool = WorkerPool::new(opts.jobs);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let id = next_id;
            next_id += 1;
            match Request::from_json_line(&line) {
                Err(msg) => {
                    // Malformed input answers immediately (preserving
                    // arrival order for the `id`) and the server lives.
                    respond(
                        &writer,
                        &JobResponse::fail(id, "", Status::Error, format!("bad request: {msg}"))
                            .render(),
                    );
                }
                Ok(Request::List(kind)) => {
                    // Listings are registry reads; answer inline.
                    let line = match service.list_items(&kind) {
                        Ok(items) => render_listing(id, &kind, &items),
                        Err(msg) => JobResponse::fail(id, "", Status::Error, msg).render(),
                    };
                    respond(&writer, &line);
                }
                Ok(Request::Job(req)) => {
                    let service = service.clone();
                    let defaults = opts.defaults.clone();
                    let writer = Arc::clone(&writer);
                    pool.submit(move || {
                        let resp = service.execute(id, &req, &defaults);
                        respond(&writer, &resp.render());
                    });
                }
            }
        }
    } // EOF: join the workers — every accepted job has answered
    let writer = Arc::try_unwrap(writer)
        .unwrap_or_else(|_| unreachable!("workers joined; no writer clones remain"));
    let mut writer = writer.into_inner();
    writer.flush()?;
    Ok(writer)
}

/// Serve connections on a unix socket at `path`, accepting them one at a
/// time; each connection speaks the same JSON-lines protocol and shares
/// the service's warm parse cache. A stale socket file at `path` is
/// replaced. `max_connections` bounds the accept loop (`None` serves
/// forever) so tests and scripted drivers can terminate it.
///
/// # Errors
///
/// Binding and accepting errors are fatal; per-connection I/O failures
/// end that connection only.
#[cfg(unix)]
pub fn serve_socket(
    service: &CompileService,
    path: &std::path::Path,
    opts: &ServeOpts,
    max_connections: Option<usize>,
) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    for (served, stream) in listener.incoming().enumerate() {
        let stream = stream?;
        let reader = std::io::BufReader::new(stream.try_clone()?);
        if serve(service, reader, stream, opts).is_err() {
            // This connection died mid-request; the next one is fine.
        }
        if max_connections.is_some_and(|max| served + 1 >= max) {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    const PROGRAM: &str = "component main() -> () { cells {} wires {} control {} }";

    fn serve_lines(input: &str, jobs: usize) -> Vec<String> {
        let service = CompileService::new();
        let opts = ServeOpts {
            jobs,
            ..ServeOpts::default()
        };
        let out = serve(&service, input.as_bytes(), Vec::new(), &opts).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    fn by_id(lines: &[String], id: u64) -> json::Json {
        lines
            .iter()
            .map(|l| json::parse(l).unwrap())
            .find(|v| v.get("id").unwrap().as_u64() == Some(id))
            .unwrap_or_else(|| panic!("no response with id {id}"))
    }

    #[test]
    fn serves_jobs_listings_and_errors_on_one_stream() {
        let input = format!(
            "{}\n\n{}\n{}\n",
            format_args!("{{\"source\": {}, \"name\": \"p\"}}", json::escape(PROGRAM)),
            r#"{"list": "backends"}"#,
            r#"{"sorce": "x"}"#,
        );
        let lines = serve_lines(&input, 1);
        assert_eq!(lines.len(), 3);

        let job = by_id(&lines, 0);
        assert_eq!(job.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(job.get("name").unwrap().as_str(), Some("p"));
        assert!(job
            .get("output")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("component main"));

        let listing = by_id(&lines, 1);
        assert_eq!(listing.get("list").unwrap().as_str(), Some("backends"));
        assert!(!listing.get("items").unwrap().as_arr().unwrap().is_empty());

        let bad = by_id(&lines, 2);
        assert_eq!(bad.get("status").unwrap().as_str(), Some("error"));
        assert!(bad
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("bad request"));
    }

    /// The acceptance bulkhead: a malformed request and a parse-failing
    /// job cannot take the server down — later requests still answer.
    #[test]
    fn survives_malformed_requests_and_failing_jobs() {
        let input = format!(
            "this is not json\n{}\n{}\n",
            r#"{"source": "component main( {"}"#,
            format_args!("{{\"source\": {}}}", json::escape(PROGRAM)),
        );
        let lines = serve_lines(&input, 2);
        assert_eq!(lines.len(), 3);
        assert_eq!(
            by_id(&lines, 0).get("status").unwrap().as_str(),
            Some("error")
        );
        assert_eq!(
            by_id(&lines, 1).get("status").unwrap().as_str(),
            Some("error")
        );
        assert_eq!(by_id(&lines, 2).get("status").unwrap().as_str(), Some("ok"));
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trips() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;

        let dir = std::env::temp_dir().join(format!("futil-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("futil.sock");
        let spath = path.clone();
        let server = std::thread::spawn(move || {
            let service = CompileService::new();
            serve_socket(&service, &spath, &ServeOpts::default(), Some(1)).unwrap();
        });
        // The listener may not be bound yet; retry briefly.
        let mut stream = loop {
            match UnixStream::connect(&path) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };
        stream.write_all(b"{\"list\": \"frontends\"}\n").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut line = String::new();
        BufReader::new(&stream).read_line(&mut line).unwrap();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("list").unwrap().as_str(), Some("frontends"));
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
