//! A fixed-size worker pool over `std::thread` and channels.
//!
//! Deliberately minimal — a shared-receiver task queue, not a
//! work-stealing scheduler. Compile jobs are coarse (milliseconds), so
//! one mutex-guarded `mpsc::Receiver` shared by N workers is contention
//! -free in practice and keeps the whole pool dependency-free.
//!
//! [`catch_job_panic`] is the panic bulkhead: one poisoned input must
//! not take down the batch or the server, so job bodies run under
//! `catch_unwind` with the default "thread panicked" stderr banner
//! suppressed for the duration.

use parking_lot::Mutex;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Once};
use std::thread;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// `N` worker threads draining one task queue. Dropping the pool closes
/// the queue and joins every worker, so all submitted tasks finish.
pub struct WorkerPool {
    sender: Option<mpsc::Sender<Task>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool of `jobs.max(1)` workers.
    pub fn new(jobs: usize) -> WorkerPool {
        let (sender, receiver) = mpsc::channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..jobs.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                thread::Builder::new()
                    .name(format!("futil-worker-{i}"))
                    .spawn(move || loop {
                        // Take the lock only to dequeue, never while
                        // running a task, so workers drain in parallel.
                        let task = receiver.lock().recv();
                        match task {
                            Ok(task) => task(),
                            Err(_) => break, // queue closed
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// The default worker count: the machine's available parallelism.
    pub fn default_jobs() -> usize {
        thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// Queue a task; some worker runs it exactly once.
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool sender lives until drop")
            .send(Box::new(task))
            .expect("workers outlive the queue");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

thread_local! {
    static SUPPRESS_PANIC_BANNER: AtomicBool = const { AtomicBool::new(false) };
}

fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let suppress = SUPPRESS_PANIC_BANNER.with(|flag| flag.load(Ordering::Relaxed));
            if !suppress {
                previous(info);
            }
        }));
    });
}

/// Run `job`, converting a panic into `Err(message)` instead of
/// unwinding the worker — and without the default panic banner spamming
/// stderr (other threads' genuine panics still print).
pub fn catch_job_panic<T>(job: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_hook();
    SUPPRESS_PANIC_BANNER.with(|flag| flag.store(true, Ordering::Relaxed));
    let result = panic::catch_unwind(AssertUnwindSafe(job));
    SUPPRESS_PANIC_BANNER.with(|flag| flag.store(false, Ordering::Relaxed));
    result.map_err(|payload| {
        if let Some(msg) = payload.downcast_ref::<&str>() {
            (*msg).to_string()
        } else if let Some(msg) = payload.downcast_ref::<String>() {
            msg.clone()
        } else {
            "job panicked".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_every_task_and_joins_on_drop() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(4);
            for _ in 0..64 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop waits for all 64
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn zero_jobs_still_gets_one_worker() {
        let ran = Arc::new(AtomicBool::new(false));
        {
            let pool = WorkerPool::new(0);
            let ran = Arc::clone(&ran);
            pool.submit(move || ran.store(true, Ordering::SeqCst));
        }
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn panics_become_errors_and_spare_the_worker() {
        assert_eq!(catch_job_panic(|| 7), Ok(7));
        assert_eq!(
            catch_job_panic(|| -> () { panic!("str payload") }),
            Err("str payload".to_string())
        );
        assert_eq!(
            catch_job_panic(|| -> () { panic!("formatted {}", 3) }),
            Err("formatted 3".to_string())
        );

        // A worker that catches a panicking task keeps serving.
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            pool.submit(|| {
                let _ = catch_job_panic(|| panic!("poisoned input"));
            });
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
