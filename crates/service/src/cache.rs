//! The shared frontend parse cache.
//!
//! Batch and serve workloads hammer the compiler with *repeated* inputs
//! — the same generated kernel compiled to several backends, the same
//! file re-requested across serve connections. The cache keys each parse
//! by `(frontend fingerprint, content digest)` and stores the parsed
//! program's **canonical Calyx text** (via
//! [`Printer::print_context`](calyx_core::ir::Printer::print_context)).
//!
//! Why text and not the IR itself: the compile-time IR is `Rc`-based and
//! cannot cross worker threads. Canonical text can, and re-ingesting it
//! through the native parser skips the expensive half of a repeated job
//! — generator frontends (polybench, systolic, dahlia) spend most of
//! their parse stage *producing* Calyx, which a hit replays in one cheap
//! `parse_context`. Hit-path determinism (canonical text re-parses to a
//! byte-identical program) is pinned by the batch differential suite.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// FNV-1a 64-bit digest of `bytes` — the cache's content key. Stable
/// across runs and platforms (no randomized hasher), cheap, and
/// collision-resistant enough for a cache whose worst case is a spurious
/// miss... which cannot happen either: a digest collision would serve
/// the wrong program, so the full fingerprint keeps the frontend name
/// and options alongside it and entries are only shared for equal
/// digests *and* equal fingerprints.
pub fn digest64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Running hit/miss counters, readable while workers are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the frontend.
    pub misses: u64,
}

/// A thread-safe map from `(frontend fingerprint, source digest)` to the
/// canonical text of the parsed program.
#[derive(Debug, Default)]
pub struct ParseCache {
    map: Mutex<HashMap<(String, u64), Arc<str>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ParseCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cache key's frontend half: the frontend's name plus its
    /// canonicalized options (sorted by key, last occurrence winning —
    /// matching `FrontendOpts` lookup semantics), so `n=8,kernel=gemm`
    /// and `kernel=gemm,n=8` share an entry while `n=8` and `n=16` do
    /// not.
    pub fn fingerprint(frontend: &str, fopts: &[(String, String)]) -> String {
        let mut last: Vec<(&str, &str)> = Vec::new();
        for (k, v) in fopts {
            match last.iter_mut().find(|(lk, _)| *lk == k) {
                Some(slot) => slot.1 = v,
                None => last.push((k, v)),
            }
        }
        last.sort_unstable_by_key(|(k, _)| *k);
        let mut fp = String::from(frontend);
        for (k, v) in last {
            // `\x1f` (unit separator) cannot appear in flag text parsed
            // from `key=value`, so the fingerprint is injective.
            fp.push('\x1f');
            fp.push_str(k);
            fp.push('\x1f');
            fp.push_str(v);
        }
        fp
    }

    /// The cached canonical text for `(fingerprint, digest)`, counting
    /// the lookup as a hit or miss.
    pub fn lookup(&self, fingerprint: &str, digest: u64) -> Option<Arc<str>> {
        let found = self
            .map
            .lock()
            .get(&(fingerprint.to_string(), digest))
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store the canonical text for `(fingerprint, digest)`.
    pub fn insert(&self, fingerprint: String, digest: u64, canonical: String) {
        self.map
            .lock()
            .insert((fingerprint, digest), Arc::from(canonical));
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        // Pinned FNV-1a test vector: an accidental algorithm change
        // would silently invalidate every cross-run expectation.
        assert_eq!(digest64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(digest64(b"component a"), digest64(b"component b"));
    }

    #[test]
    fn fingerprint_canonicalizes_options() {
        let a = ParseCache::fingerprint(
            "polybench",
            &[("n".into(), "8".into()), ("kernel".into(), "gemm".into())],
        );
        let b = ParseCache::fingerprint(
            "polybench",
            &[("kernel".into(), "gemm".into()), ("n".into(), "8".into())],
        );
        assert_eq!(a, b);

        // Last occurrence wins, as in FrontendOpts::get.
        let c = ParseCache::fingerprint(
            "polybench",
            &[
                ("n".into(), "4".into()),
                ("kernel".into(), "gemm".into()),
                ("n".into(), "8".into()),
            ],
        );
        assert_eq!(a, c);

        // Different values and different frontends are distinct keys.
        assert_ne!(
            a,
            ParseCache::fingerprint("polybench", &[("kernel".into(), "gemm".into())])
        );
        assert_ne!(a, ParseCache::fingerprint("systolic", &[]));
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = ParseCache::new();
        let fp = ParseCache::fingerprint("calyx", &[]);
        let d = digest64(b"component main() -> () {}");
        assert!(cache.lookup(&fp, d).is_none());
        cache.insert(fp.clone(), d, "canonical".to_string());
        assert_eq!(cache.lookup(&fp, d).as_deref(), Some("canonical"));
        // Same digest under another fingerprint is a separate entry.
        assert!(cache.lookup("other", d).is_none());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 2 });
        assert_eq!(cache.len(), 1);
    }
}
