//! FPGA resource estimation — the Vivado synthesis substitute.
//!
//! The paper reports LUT counts from Vivado targeting a Zynq UltraScale+
//! at a 7ns clock (§7.1). We replace synthesis with a deterministic
//! technology model applied to the *lowered* program, so control logic
//! (FSM guards), sharing-induced multiplexers, and datapath units are all
//! visible to the estimate:
//!
//! | structure | LUTs | FFs | DSP | BRAM |
//! |---|---|---|---|---|
//! | `std_reg(W)` | 0 | W + 1 (done) | | |
//! | `std_add/std_sub(W)` | W (carry chain) | | | |
//! | bitwise logic (W) | ⌈W/2⌉ (LUT6 packing) | | | |
//! | eq/neq (W) | ⌈W/3⌉ (3 bits/LUT + reduce) | | | |
//! | ordered compares (W) | W (carry chain) | | | |
//! | shifts (W) | ⌈W·log₂W/2⌉ (barrel) | | | |
//! | `std_mult_pipe(W)` | W/2 control | 2·W pipeline | ⌈W/18⌉² | |
//! | `std_div_pipe(W)` | 4·W (iterative) | 3·W | | |
//! | `std_sqrt(W)` | 2·W | 2·W | | |
//! | memory (bits B) | ⌈B/64⌉ if B ≤ 4096 (LUTRAM) | | | ⌈B/18432⌉ otherwise |
//! | k-driver port mux (width W) | W·⌈(k−1)/2⌉ (4:1 per LUT6 pair) | | | |
//! | guard logic | ⌈unique boolean nodes/3⌉ + per-comparison costs | | | |
//!
//! Guard subexpressions are hash-consed before counting, mirroring the
//! common-subexpression extraction synthesis performs on FSM state decodes.
//! Absolute numbers are not Vivado's; *ratios* between designs estimated by
//! the same model are the quantities the paper's figures plot.

use crate::api::{Backend, BackendOpts, ReportFormat};
use calyx_core::errors::{CalyxResult, Error};
use calyx_core::ir::{validate, Atom, CellType, CompOp, Component, Context, Guard, Id, PortRef};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io;
use std::ops::Add;

/// An FPGA resource estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Area {
    /// Lookup tables.
    pub luts: u64,
    /// Flip-flops (the paper's Fig. 9b "registers" metric counts
    /// register *cells*; see [`Area::register_cells`]).
    pub ffs: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// Block RAMs.
    pub brams: u64,
    /// Number of `std_reg` cells (datapath + control).
    pub register_cells: u64,
}

impl Area {
    /// The report's metrics as `(name, value)` pairs, in report order.
    /// Single source of truth for both output formats — a metric added
    /// here appears in text and JSON alike.
    pub fn metrics(&self) -> [(&'static str, u64); 5] {
        [
            ("luts", self.luts),
            ("ffs", self.ffs),
            ("dsps", self.dsps),
            ("brams", self.brams),
            ("register_cells", self.register_cells),
        ]
    }

    /// Write the stable, line-oriented text report: one `name value` pair
    /// per line, in [`Area::metrics`] order.
    ///
    /// # Errors
    ///
    /// Propagates write failures from `out`.
    pub fn write_text(&self, out: &mut dyn io::Write) -> io::Result<()> {
        for (name, value) in self.metrics() {
            writeln!(out, "{name} {value}")?;
        }
        Ok(())
    }

    /// Write the report as a single JSON object (keys as in
    /// [`Area::metrics`]), terminated by a newline.
    ///
    /// # Errors
    ///
    /// Propagates write failures from `out`.
    pub fn write_json(&self, out: &mut dyn io::Write) -> io::Result<()> {
        write!(out, "{{")?;
        for (idx, (name, value)) in self.metrics().into_iter().enumerate() {
            let sep = if idx == 0 { "" } else { "," };
            write!(out, "{sep}\"{name}\":{value}")?;
        }
        writeln!(out, "}}")
    }
}

impl Add for Area {
    type Output = Area;
    fn add(self, rhs: Area) -> Area {
        Area {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            dsps: self.dsps + rhs.dsps,
            brams: self.brams + rhs.brams,
            register_cells: self.register_cells + rhs.register_cells,
        }
    }
}

fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

fn log2_ceil(v: u64) -> u64 {
    u64::from(calyx_core::utils::bits_needed(v.saturating_sub(1)))
}

/// The `area` backend: estimate the entrypoint's FPGA resources and
/// report them as a stable, line-oriented text table (or JSON, per
/// [`BackendOpts::format`]).
///
/// Requires a lowered design — the estimate prices FSM guard logic and
/// sharing-induced multiplexers, which only exist after lowering.
pub struct AreaBackend {
    format: ReportFormat,
}

impl Backend for AreaBackend {
    const NAME: &'static str = "area";
    const DESCRIPTION: &'static str =
        "estimate FPGA resources (LUTs/FFs/DSPs/BRAMs) of the lowered design";
    const EXTENSION: &'static str = "area";

    fn from_opts(opts: &BackendOpts) -> Self {
        AreaBackend {
            format: opts.format,
        }
    }

    fn required_pipeline(&self) -> &'static [&'static str] {
        &["lower"]
    }

    fn validate(&self, ctx: &Context) -> CalyxResult<()> {
        ctx.entry()?;
        validate::require_lowered(ctx)
    }

    fn emit(&self, ctx: &Context, out: &mut dyn io::Write) -> CalyxResult<()> {
        // Estimate fully before writing: a failure mid-model must not
        // leave a truncated report behind.
        let area = estimate(ctx, ctx.entrypoint.as_str())?;
        match self.format {
            ReportFormat::Text => area.write_text(out)?,
            ReportFormat::Json => area.write_json(out)?,
        }
        Ok(())
    }
}

/// Estimate the resources of the design rooted at `top`.
///
/// Component instances are counted once per *instance* (hardware is not
/// shared across instantiations).
///
/// # Errors
///
/// Returns [`Error::Malformed`] when a referenced component still contains
/// control (run lowering first) and [`Error::Undefined`] for unknown names.
pub fn estimate(ctx: &Context, top: &str) -> CalyxResult<Area> {
    let mut cache: HashMap<Id, Area> = HashMap::new();
    component_area(ctx, Id::new(top), &mut cache)
}

fn component_area(ctx: &Context, name: Id, cache: &mut HashMap<Id, Area>) -> CalyxResult<Area> {
    if let Some(a) = cache.get(&name) {
        return Ok(*a);
    }
    let comp = ctx
        .components
        .get(name)
        .ok_or_else(|| Error::undefined(format!("component `{name}`")))?;
    validate::require_lowered_component(comp)?;
    let mut total = Area::default();
    for cell in comp.cells.iter() {
        total = total
            + match &cell.prototype {
                CellType::Primitive {
                    name: prim, params, ..
                } => primitive_area(prim.as_str(), params),
                CellType::Component { name: child } => component_area(ctx, *child, cache)?,
            };
    }
    total = total + wiring_area(comp)?;
    cache.insert(name, total);
    Ok(total)
}

/// Resource cost of one primitive instance (the table from the module
/// docs). Public so the HLS baseline model prices its functional units and
/// memories with the *same* technology numbers, keeping the paper's
/// relative area comparisons meaningful.
pub fn primitive_area(prim: &str, params: &[u64]) -> Area {
    let w = params.first().copied().unwrap_or(1);
    let mut a = Area::default();
    match prim {
        "std_reg" => {
            a.ffs = w + 1;
            a.register_cells = 1;
        }
        "std_add" | "std_sub" => a.luts = w,
        "std_and" | "std_or" | "std_xor" | "std_not" => a.luts = ceil_div(w, 2),
        "std_eq" | "std_neq" => a.luts = ceil_div(w, 3),
        "std_lt" | "std_gt" | "std_ge" | "std_le" | "std_slt" | "std_sgt" => a.luts = w,
        "std_lsh" | "std_rsh" => a.luts = ceil_div(w * log2_ceil(w.max(2)), 2),
        "std_slice" | "std_pad" | "std_wire" => {}
        "std_mult_pipe" => {
            a.luts = w / 2;
            a.ffs = 2 * w;
            a.dsps = ceil_div(w, 18).pow(2);
        }
        "std_div_pipe" => {
            a.luts = 4 * w;
            a.ffs = 3 * w;
        }
        "std_sqrt" => {
            a.luts = 2 * w;
            a.ffs = 2 * w;
        }
        "std_mem_d1" | "std_mem_d2" | "std_mem_d3" => {
            let size: u64 = match prim {
                "std_mem_d1" => params[1],
                "std_mem_d2" => params[1] * params[2],
                _ => params[1] * params[2] * params[3],
            };
            let bits = w * size;
            if bits <= 4096 {
                a.luts = ceil_div(bits, 64);
            } else {
                a.brams = ceil_div(bits, 18 * 1024);
            }
        }
        // Extern primitives: unknown implementation, count nothing. This is
        // what the paper does with black-box RTL (vendor IP reported
        // separately by synthesis).
        _ => {}
    }
    a
}

/// Multiplexing and guard logic from the component's own assignments.
fn wiring_area(comp: &Component) -> CalyxResult<Area> {
    let mut a = Area::default();

    // Multi-driver ports become mux trees.
    let mut drivers: BTreeMap<PortRef, u64> = BTreeMap::new();
    for asgn in &comp.continuous {
        *drivers.entry(asgn.dst).or_insert(0) += 1;
    }
    for (dst, k) in &drivers {
        if *k > 1 {
            let w = u64::from(comp.port_width(dst)?);
            a.luts += w * ceil_div(k - 1, 2);
        }
    }

    // Guard logic, hash-consed: every unique boolean connective costs a
    // third of a LUT; unique comparisons cost per the table.
    let mut seen: HashSet<String> = HashSet::new();
    let mut bool_nodes: u64 = 0;
    let mut cmp_luts: u64 = 0;
    for asgn in &comp.continuous {
        count_guard(&asgn.guard, comp, &mut seen, &mut bool_nodes, &mut cmp_luts)?;
    }
    a.luts += ceil_div(bool_nodes, 3) + cmp_luts;
    Ok(a)
}

fn count_guard(
    guard: &Guard,
    comp: &Component,
    seen: &mut HashSet<String>,
    bool_nodes: &mut u64,
    cmp_luts: &mut u64,
) -> CalyxResult<()> {
    let key = format!("{guard}");
    match guard {
        Guard::True | Guard::Port(_) => {}
        Guard::Not(inner) => {
            if seen.insert(key) {
                *bool_nodes += 1;
            }
            count_guard(inner, comp, seen, bool_nodes, cmp_luts)?;
        }
        Guard::And(l, r) | Guard::Or(l, r) => {
            if seen.insert(key) {
                *bool_nodes += 1;
            }
            count_guard(l, comp, seen, bool_nodes, cmp_luts)?;
            count_guard(r, comp, seen, bool_nodes, cmp_luts)?;
        }
        Guard::Comp(op, l, r) => {
            if seen.insert(key) {
                let w = u64::from(atom_width(l, comp)?.max(atom_width(r, comp)?));
                *cmp_luts += match op {
                    CompOp::Eq | CompOp::Neq => ceil_div(w, 3),
                    _ => w,
                };
            }
        }
    }
    Ok(())
}

fn atom_width(atom: &Atom, comp: &Component) -> CalyxResult<u32> {
    match atom {
        Atom::Port(p) => comp.port_width(p),
        Atom::Const { width, .. } => Ok(*width),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calyx_core::ir::parse_context;
    use calyx_core::passes;

    fn lowered(src: &str) -> Context {
        let mut ctx = parse_context(src).unwrap();
        passes::lower_pipeline().run(&mut ctx).unwrap();
        ctx
    }

    #[test]
    fn primitive_table_spot_checks() {
        assert_eq!(primitive_area("std_add", &[32]).luts, 32);
        assert_eq!(primitive_area("std_reg", &[32]).ffs, 33);
        assert_eq!(primitive_area("std_reg", &[32]).register_cells, 1);
        assert_eq!(primitive_area("std_eq", &[32]).luts, 11);
        assert_eq!(primitive_area("std_mult_pipe", &[32]).dsps, 4);
        assert_eq!(primitive_area("std_mult_pipe", &[18]).dsps, 1);
        // Small memory -> LUTRAM; big memory -> BRAM.
        let small = primitive_area("std_mem_d1", &[32, 16, 4]);
        assert!(small.brams == 0 && small.luts > 0);
        let big = primitive_area("std_mem_d2", &[32, 64, 64, 6, 6]);
        assert!(big.brams > 0 && big.luts == 0);
    }

    #[test]
    fn estimates_whole_designs() {
        let ctx = lowered(
            r#"component main() -> () {
              cells { x = std_reg(32); a = std_add(32); }
              wires {
                group g {
                  a.left = x.out; a.right = 32'd1;
                  x.in = a.out; x.write_en = 1'd1;
                  g[done] = x.done;
                }
              }
              control { g; }
            }"#,
        );
        let area = estimate(&ctx, "main").unwrap();
        // 32-bit adder (32) + guard logic; reg contributes FFs only. A
        // single-enable control program needs no FSM register.
        assert!(area.luts >= 32, "{area:?}");
        assert!(area.ffs >= 33, "{area:?}");
        assert_eq!(area.register_cells, 1, "{area:?}");
    }

    #[test]
    fn sharing_reduces_unit_luts_but_adds_muxes() {
        // Two adders in sequence: sharing removes one 32-LUT adder but the
        // shared adder's ports gain extra drivers (mux cost).
        let src = r#"component main() -> () {
              cells {
                r0 = std_reg(32); r1 = std_reg(32);
                a0 = std_add(32); a1 = std_add(32);
              }
              wires {
                group g0 {
                  a0.left = r0.out; a0.right = 32'd1;
                  r0.in = a0.out; r0.write_en = 1'd1; g0[done] = r0.done;
                }
                group g1 {
                  a1.left = r1.out; a1.right = 32'd2;
                  r1.in = a1.out; r1.write_en = 1'd1; g1[done] = r1.done;
                }
              }
              control { seq { g0; g1; } }
            }"#;
        let lower = |rs: bool| {
            let mut c = parse_context(src).unwrap();
            passes::optimized_pipeline(rs, false, false)
                .run(&mut c)
                .unwrap();
            c
        };
        let baseline_ctx = lower(false);
        let shared_ctx = lower(true);
        let baseline = estimate(&baseline_ctx, "main").unwrap();
        let shared = estimate(&shared_ctx, "main").unwrap();
        // Sharing physically removed an adder...
        let adders = |ctx: &Context| {
            ctx.component("main")
                .unwrap()
                .cells
                .iter()
                .filter(|c| c.is_primitive("std_add"))
                .count()
        };
        assert_eq!(adders(&baseline_ctx), 2);
        assert_eq!(adders(&shared_ctx), 1);
        // ...but the input multiplexers can cost as much as the saved unit —
        // exactly the effect the paper reports in Fig. 9a. The estimate must
        // move by a bounded amount, not collapse by a full adder.
        let diff = shared.luts.abs_diff(baseline.luts);
        assert!(diff <= 96, "baseline {baseline:?} vs shared {shared:?}");
        assert_eq!(shared.ffs, baseline.ffs);
    }

    #[test]
    fn rejects_unlowered_designs() {
        let ctx = parse_context(
            r#"component main() -> () {
              cells { r = std_reg(8); }
              wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
              control { g; }
            }"#,
        )
        .unwrap();
        assert!(estimate(&ctx, "main").is_err());
    }

    #[test]
    fn hierarchical_designs_count_instances() {
        let ctx = lowered(
            r#"
            component pe() -> () {
              cells { r = std_reg(32); }
              wires { group w { r.in = 32'd1; r.write_en = 1'd1; w[done] = r.done; } }
              control { w; }
            }
            component main() -> () {
              cells { p0 = pe(); p1 = pe(); }
              wires {
                group a { p0.go = 1'd1; a[done] = p0.done; }
                group c { p1.go = 1'd1; c[done] = p1.done; }
              }
              control { seq { a; c; } }
            }"#,
        );
        let area = estimate(&ctx, "main").unwrap();
        // Two PE instances, each with a 32-bit register.
        assert!(area.ffs >= 66, "{area:?}");
        assert!(area.register_cells >= 2);
    }
}
