//! The `calyx` backend: print the program as Calyx text.
//!
//! This is the [`Printer`] behind the
//! [`Backend`] contract — the identity backend that makes the compiler's
//! intermediate state inspectable at any pipeline stage.

use crate::api::{Backend, BackendOpts};
use calyx_core::errors::CalyxResult;
use calyx_core::ir::{Context, Printer};
use std::io;

/// Prints the (possibly compiled) program in the textual Calyx format.
///
/// Accepts any program: [`Backend::validate`] never fails and
/// [`Backend::required_pipeline`] is empty, so drivers that default to a
/// backend's declared pipeline fall back to their own default for this
/// one.
pub struct CalyxBackend;

impl Backend for CalyxBackend {
    const NAME: &'static str = "calyx";
    const DESCRIPTION: &'static str = "print the program as Calyx text";
    const EXTENSION: &'static str = "futil";

    fn from_opts(_: &BackendOpts) -> Self {
        CalyxBackend
    }

    fn required_pipeline(&self) -> &'static [&'static str] {
        &[]
    }

    fn validate(&self, _: &Context) -> CalyxResult<()> {
        Ok(())
    }

    fn emit(&self, ctx: &Context, out: &mut dyn io::Write) -> CalyxResult<()> {
        // Stream component-by-component; byte-identical to
        // `Printer::print_context` without materializing the whole
        // program text.
        for comp in ctx.components.iter() {
            write!(out, "{}", Printer::print_component(comp))?;
            writeln!(out)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calyx_core::ir::parse_context;

    #[test]
    fn emission_matches_the_printer_byte_for_byte() {
        let ctx = parse_context(
            r#"
            component helper() -> () {
              cells { r = std_reg(8); }
              wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
              control { g; }
            }
            component main() -> () {
              cells { h = helper(); }
              wires { group go { h.go = 1'd1; go[done] = h.done; } }
              control { go; }
            }"#,
        )
        .unwrap();
        let mut out = Vec::new();
        CalyxBackend.emit(&ctx, &mut out).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            Printer::print_context(&ctx)
        );
    }
}
