//! Backends for lowered Calyx programs.
//!
//! - [`verilog`]: the paper's `Lower` pass (§4.2) — translate control-free
//!   Calyx into synthesizable SystemVerilog, one module per component.
//! - [`area`]: an FPGA resource estimator standing in for Vivado synthesis
//!   (see DESIGN.md §2). It reports LUTs, flip-flops, DSP blocks, and BRAMs
//!   for a lowered design using a documented, deterministic technology
//!   model, which is what the relative comparisons in the paper's Figures
//!   7b, 8b, and 9 need.

pub mod area;
pub mod verilog;

pub use area::{estimate, Area};
pub use verilog::emit;
