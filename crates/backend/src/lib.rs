//! Backends: interchangeable consumers of compiled Calyx programs.
//!
//! The paper's core claim (§4.2) is that Calyx is an *infrastructure*:
//! frontends lower into the IL, passes transform it, and any number of
//! backends consume the result. This crate makes the consuming side a
//! first-class API. Every backend implements the [`Backend`] trait:
//!
//! - [`Backend::NAME`] / [`Backend::DESCRIPTION`] identify it to drivers
//!   (`futil -b <name>`, `--list-backends`);
//! - [`Backend::required_pipeline`] declares, as pass-registry names and
//!   aliases, the pipeline its input is expected to have run;
//! - [`Backend::validate`] checks the structural consequences ("no
//!   groups, no control" for SystemVerilog) before any output exists;
//! - [`Backend::emit`] streams the result into any
//!   [`io::Write`](std::io::Write) sink — a file, a pipe, a `Vec<u8>` —
//!   without materializing it as one giant `String` first.
//!
//! [`BackendRegistry`] mirrors the pass registry: kebab-case names,
//! panics on registration mistakes, and [`Error::Undefined`]
//! (listing the valid choices) on unknown lookups. The five standard
//! backends, in registry order:
//!
//! | backend | module | consumes |
//! |---|---|---|
//! | `calyx` | [`mod@print`] | any program — the [`Printer`](calyx_core::ir::Printer) as a backend |
//! | `verilog` | [`verilog`] | lowered programs → synthesizable SystemVerilog (the paper's `Lower` output, §4.2) |
//! | `area` | [`area`] | lowered programs → deterministic FPGA resource report (the Vivado substitute behind Figures 7b/8b/9) |
//! | `sim` | [`simulate`] | lowered programs → cycle-accurate execution report (the Verilator substitute) |
//! | `interp` | [`simulate`] | un-lowered programs → reference-interpreter execution report (the IL's executable semantics) |
//!
//! Driver-level options ([`BackendOpts`]: cycle budgets, report formats)
//! are captured at construction via [`Backend::from_opts`], so `emit`
//! keeps the uniform `(&Context, &mut dyn Write)` shape the registry
//! needs.
//!
//! [`Error::Undefined`]: calyx_core::errors::Error::Undefined

pub mod api;
pub mod area;
pub mod print;
pub mod simulate;
pub mod verilog;

pub use api::{
    Backend, BackendOpts, BackendRegistry, DynBackend, RegisteredBackend, ReportFormat,
    SimThroughput,
};
pub use area::{estimate, Area, AreaBackend};
pub use print::CalyxBackend;
pub use simulate::{InterpBackend, SimBackend};
pub use verilog::{emit, VerilogBackend};
