//! The [`Backend`] trait and [`BackendRegistry`]: emission as a
//! first-class, data-driven API.
//!
//! A backend consumes a compiled [`Context`] and streams its output into
//! any [`io::Write`] sink. The trait splits that into a contract with
//! three obligations:
//!
//! 1. [`Backend::required_pipeline`] *declares* (as pass-registry names
//!    and aliases) which pipeline the input is expected to have run.
//!    Drivers use it as the default `-p` pipeline and quote it in
//!    precondition errors.
//! 2. [`Backend::validate`] *checks* the structural consequences of that
//!    pipeline (e.g. "no groups, no control" for SystemVerilog) before a
//!    single byte is written, so an unmet precondition can never produce
//!    partial output.
//! 3. [`Backend::emit`] streams the result. Emission never builds the
//!    whole output in memory first.
//!
//! [`BackendRegistry`] mirrors the pass registry: backends register a
//! unique kebab-case [`Backend::NAME`] plus a one-line
//! [`Backend::DESCRIPTION`], lookups of unknown names return
//! [`Error::Undefined`] listing the valid choices, and duplicate or
//! ill-formatted names panic at registration time (they are compile-time
//! constants, so a collision is a programming error).
//!
//! ```
//! use calyx_backend::{BackendOpts, BackendRegistry};
//! use calyx_core::ir::parse_context;
//! use calyx_core::passes::PassManager;
//!
//! let mut ctx = parse_context(
//!     "component main() -> () {
//!        cells { r = std_reg(8); }
//!        wires { group g { r.in = 8'd7; r.write_en = 1'd1; g[done] = r.done; } }
//!        control { g; }
//!      }",
//! )
//! .unwrap();
//! let registry = BackendRegistry::default();
//! let backend = registry.get("verilog", &BackendOpts::default()).unwrap();
//!
//! // An unlowered input fails `validate`, cleanly, before any output.
//! assert!(backend.validate(&ctx).is_err());
//!
//! // The backend's declared pipeline is the fix.
//! let mut pm = PassManager::from_names(backend.required_pipeline()).unwrap();
//! pm.run(&mut ctx).unwrap();
//! backend.validate(&ctx).unwrap();
//! let mut out = Vec::new();
//! backend.emit(&ctx, &mut out).unwrap();
//! assert!(String::from_utf8(out).unwrap().contains("module main"));
//! ```

use calyx_core::errors::{CalyxResult, Error};
use calyx_core::ir::Context;
use calyx_core::utils::is_kebab_case;
use std::io;

/// Output format for report-style backends (currently consumed by
/// [`area`](crate::area::AreaBackend)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportFormat {
    /// Line-oriented `key value` text (stable; one metric per line).
    #[default]
    Text,
    /// A single JSON object.
    Json,
}

/// Driver-level options a backend may consume at construction time.
///
/// The driver parses these from its own flags (`futil --cycles`,
/// `--format`) and hands the whole bag to
/// [`BackendRegistry::get`]; each backend picks out the fields it cares
/// about and ignores the rest, so adding an option never touches
/// unrelated backends.
#[derive(Debug, Clone)]
pub struct BackendOpts {
    /// Simulation cycle budget (`sim` and `interp`).
    pub cycles: u64,
    /// Report format (`area`).
    pub format: ReportFormat,
}

impl Default for BackendOpts {
    fn default() -> Self {
        BackendOpts {
            cycles: 1_000_000,
            format: ReportFormat::Text,
        }
    }
}

/// Measured throughput of a simulation-style backend's most recent
/// [`Backend::emit`]: how many cycles the engine stepped and how long the
/// cycle loop took on the wall clock.
///
/// Engine construction (flattening, elaboration) is excluded — the
/// number answers "how fast does this engine simulate", which is what
/// `futil --time`/`--stats` report as `cycles/sec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimThroughput {
    /// Simulated cycles completed.
    pub cycles: u64,
    /// Wall-clock time spent inside the cycle loop.
    pub wall: std::time::Duration,
}

impl SimThroughput {
    /// Simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        // Sub-nanosecond walls (empty control) would divide by zero;
        // clamp to the clock's own resolution instead.
        self.cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// A consumer of compiled Calyx programs.
///
/// See the [module docs](self) for the contract. Implementations are
/// cheap value types constructed from [`BackendOpts`]; all real work
/// happens in [`Backend::emit`].
pub trait Backend {
    /// Unique kebab-case name — the `-b` argument.
    const NAME: &'static str;

    /// One-line description for `--list-backends` and generated docs.
    const DESCRIPTION: &'static str;

    /// File extension (without the dot) drivers use when inventing an
    /// output file name for this backend (`futil --batch --out-dir`).
    /// Defaults to `out`; emitters of a well-known format override it.
    const EXTENSION: &'static str = "out";

    /// Construct the backend, capturing the options it consumes.
    fn from_opts(opts: &BackendOpts) -> Self
    where
        Self: Sized;

    /// Pass-registry names/aliases the input is expected to have run.
    ///
    /// Drivers append this pipeline when the user specifies none, and
    /// name it in the error when [`Backend::validate`] rejects an
    /// explicitly-compiled input. Empty means "consumes any program".
    fn required_pipeline(&self) -> &'static [&'static str];

    /// Check structural preconditions on the input *before* emission.
    ///
    /// # Errors
    ///
    /// Returns the violation ([`Error::Malformed`] for structural
    /// problems) without writing any output.
    fn validate(&self, ctx: &Context) -> CalyxResult<()>;

    /// Stream the backend's output into `out`.
    ///
    /// Implementations re-check [`Backend::validate`]'s preconditions
    /// before writing, so a failed emission on an invalid program
    /// produces no partial output.
    ///
    /// # Errors
    ///
    /// Returns precondition violations, backend-specific failures (e.g.
    /// a simulation timeout), or [`Error::Io`] when `out` fails.
    fn emit(&self, ctx: &Context, out: &mut dyn io::Write) -> CalyxResult<()>;

    /// Throughput of the most recent successful [`Backend::emit`], for
    /// backends that *run* the program rather than print it.
    ///
    /// Non-simulation backends keep the default `None`; drivers print
    /// the measurement (cycles, wall time, cycles/sec) under
    /// `--time`/`--stats` when it is present.
    fn throughput(&self) -> Option<SimThroughput> {
        None
    }
}

/// Object-safe view of a [`Backend`].
///
/// The associated consts make [`Backend`] itself non-object-safe; every
/// `Backend` automatically implements this companion, which is what
/// [`BackendRegistry::get`] hands back to drivers.
pub trait DynBackend {
    /// [`Backend::NAME`].
    fn name(&self) -> &'static str;
    /// [`Backend::DESCRIPTION`].
    fn description(&self) -> &'static str;
    /// [`Backend::EXTENSION`].
    fn extension(&self) -> &'static str;
    /// [`Backend::required_pipeline`].
    fn required_pipeline(&self) -> &'static [&'static str];
    /// [`Backend::validate`].
    ///
    /// # Errors
    ///
    /// See [`Backend::validate`].
    fn validate(&self, ctx: &Context) -> CalyxResult<()>;
    /// [`Backend::emit`].
    ///
    /// # Errors
    ///
    /// See [`Backend::emit`].
    fn emit(&self, ctx: &Context, out: &mut dyn io::Write) -> CalyxResult<()>;
    /// [`Backend::throughput`].
    fn throughput(&self) -> Option<SimThroughput>;
}

impl<B: Backend> DynBackend for B {
    fn name(&self) -> &'static str {
        B::NAME
    }

    fn description(&self) -> &'static str {
        B::DESCRIPTION
    }

    fn extension(&self) -> &'static str {
        B::EXTENSION
    }

    fn required_pipeline(&self) -> &'static [&'static str] {
        Backend::required_pipeline(self)
    }

    fn validate(&self, ctx: &Context) -> CalyxResult<()> {
        Backend::validate(self, ctx)
    }

    fn emit(&self, ctx: &Context, out: &mut dyn io::Write) -> CalyxResult<()> {
        Backend::emit(self, ctx, out)
    }

    fn throughput(&self) -> Option<SimThroughput> {
        Backend::throughput(self)
    }
}

/// A backend known to the registry.
pub struct RegisteredBackend {
    /// The backend's unique kebab-case name.
    pub name: &'static str,
    /// One-line description (from [`Backend::DESCRIPTION`]).
    pub description: &'static str,
    /// The backend's declared pipeline (see
    /// [`Backend::required_pipeline`]), captured at registration.
    pub required_pipeline: &'static [&'static str],
    /// Output file extension (from [`Backend::EXTENSION`]), captured at
    /// registration — used by `--out-dir` and plan artifact naming.
    pub extension: &'static str,
    ctor: fn(&BackendOpts) -> Box<dyn DynBackend>,
}

impl RegisteredBackend {
    /// Construct an instance of this backend from driver options.
    pub fn construct(&self, opts: &BackendOpts) -> Box<dyn DynBackend> {
        (self.ctor)(opts)
    }
}

/// A registry of named backends, mirroring
/// [`PassRegistry`](calyx_core::passes::PassRegistry).
///
/// [`BackendRegistry::default`] knows every backend in this crate;
/// drivers can [`register`](BackendRegistry::register) their own on top.
pub struct BackendRegistry {
    backends: Vec<RegisteredBackend>,
}

impl Default for BackendRegistry {
    /// The standard registry: `calyx`, `verilog`, `area`, `sim`, and
    /// `interp`, in listing order.
    fn default() -> Self {
        let mut reg = BackendRegistry::empty();
        reg.register::<crate::print::CalyxBackend>();
        reg.register::<crate::verilog::VerilogBackend>();
        reg.register::<crate::area::AreaBackend>();
        reg.register::<crate::simulate::SimBackend>();
        reg.register::<crate::simulate::InterpBackend>();
        reg
    }
}

impl BackendRegistry {
    /// The standard registry (same as [`BackendRegistry::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with no backends, for drivers that want full control
    /// over what is selectable.
    pub fn empty() -> Self {
        BackendRegistry {
            backends: Vec::new(),
        }
    }

    /// Register backend `B` under [`Backend::NAME`].
    ///
    /// # Panics
    ///
    /// Panics when the name is already taken or is not kebab-case —
    /// backend names are compile-time constants, so a collision is a
    /// programming error, not an input error.
    pub fn register<B: Backend + 'static>(&mut self) {
        assert!(
            is_kebab_case(B::NAME),
            "backend name `{}` is not kebab-case",
            B::NAME
        );
        assert!(
            self.find(B::NAME).is_none(),
            "backend name `{}` registered twice",
            B::NAME
        );
        self.backends.push(RegisteredBackend {
            name: B::NAME,
            description: B::DESCRIPTION,
            required_pipeline: Backend::required_pipeline(&B::from_opts(&BackendOpts::default())),
            extension: B::EXTENSION,
            ctor: |opts| Box::new(B::from_opts(opts)),
        });
    }

    /// All registered backends, in registration order.
    pub fn backends(&self) -> &[RegisteredBackend] {
        &self.backends
    }

    fn find(&self, name: &str) -> Option<&RegisteredBackend> {
        self.backends.iter().find(|b| b.name == name)
    }

    /// Construct the backend registered as `name`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] naming the offending entry and
    /// listing the valid choices when `name` is unknown.
    pub fn get(&self, name: &str, opts: &BackendOpts) -> CalyxResult<Box<dyn DynBackend>> {
        self.find(name).map(|b| b.construct(opts)).ok_or_else(|| {
            Error::undefined(format!(
                "backend `{name}`; valid backends: {}",
                self.backends
                    .iter()
                    .map(|b| b.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calyx_core::passes::PassManager;
    use std::collections::BTreeSet;

    #[test]
    fn default_registry_has_all_five_backends() {
        let reg = BackendRegistry::default();
        let names: Vec<&str> = reg.backends().iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["calyx", "verilog", "area", "sim", "interp"]);
    }

    #[test]
    fn registered_names_are_unique_kebab_case_and_described() {
        let reg = BackendRegistry::default();
        let mut seen = BTreeSet::new();
        for b in reg.backends() {
            assert!(is_kebab_case(b.name), "`{}` not kebab-case", b.name);
            assert!(seen.insert(b.name), "duplicate backend name `{}`", b.name);
            assert!(!b.description.is_empty());
        }
    }

    /// Every declared pipeline must name real passes/aliases in the pass
    /// registry — this is the cross-registry integrity the driver's
    /// auto-append relies on.
    #[test]
    fn required_pipelines_resolve_in_the_pass_registry() {
        for b in BackendRegistry::default().backends() {
            let required = b.required_pipeline;
            PassManager::from_names(required).unwrap_or_else(|e| {
                panic!("backend `{}` declares unresolvable pipeline: {e}", b.name)
            });
        }
    }

    /// Every shipped backend must declare a real output extension: the
    /// generic `"out"` default is for prototypes only, and `--out-dir` /
    /// plan artifact names read much better with honest ones.
    #[test]
    fn no_registered_backend_uses_the_default_extension() {
        for b in BackendRegistry::default().backends() {
            assert_ne!(
                b.extension, "out",
                "backend `{}` inherits the generic `out` extension; give it a real one",
                b.name
            );
            assert!(
                !b.extension.is_empty() && !b.extension.starts_with('.'),
                "backend `{}` has a malformed extension `{}`",
                b.name,
                b.extension
            );
        }
    }

    #[test]
    fn unknown_backend_is_an_error_listing_choices() {
        let err = match BackendRegistry::default().get("verilgo", &BackendOpts::default()) {
            Err(e) => e,
            Ok(_) => panic!("unknown backend resolved"),
        };
        match err {
            Error::Undefined(msg) => {
                assert!(msg.contains("verilgo"), "{msg}");
                assert!(msg.contains("verilog"), "{msg}");
                assert!(msg.contains("interp"), "{msg}");
            }
            other => panic!("expected Undefined, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = BackendRegistry::empty();
        reg.register::<crate::print::CalyxBackend>();
        reg.register::<crate::print::CalyxBackend>();
    }

    struct BadName;
    impl Backend for BadName {
        const NAME: &'static str = "Bad_Name";
        const DESCRIPTION: &'static str = "never registers";
        fn from_opts(_: &BackendOpts) -> Self {
            BadName
        }
        fn required_pipeline(&self) -> &'static [&'static str] {
            &[]
        }
        fn validate(&self, _: &Context) -> CalyxResult<()> {
            Ok(())
        }
        fn emit(&self, _: &Context, _: &mut dyn io::Write) -> CalyxResult<()> {
            Ok(())
        }
    }

    #[test]
    #[should_panic(expected = "not kebab-case")]
    fn non_kebab_case_name_panics() {
        BackendRegistry::empty().register::<BadName>();
    }

    /// The hand-written backend table in the README must quote the exact
    /// registry strings (the same ones `futil --list-backends` prints),
    /// or the copies drift apart — same guard as the pass table.
    #[test]
    fn readme_backend_table_quotes_registry() {
        let readme = include_str!("../../../README.md");
        for b in BackendRegistry::default().backends() {
            let pipeline = if b.required_pipeline.is_empty() {
                "—".to_string()
            } else {
                format!("`{}`", b.required_pipeline.join(" "))
            };
            let row = format!("| `{}` | {} | {} |", b.name, b.description, pipeline);
            assert!(
                readme.contains(&row),
                "README backend table out of sync for `{}`: expected row `{row}`",
                b.name
            );
        }
    }
}
