//! The `sim` and `interp` backends: execution as emission.
//!
//! Both run the program and stream the shared cycle/state report format
//! (see [`calyx_sim::report`]) — `done in N cycles` followed by one
//! `cell = value` line per stateful cell of the entry component:
//!
//! - [`SimBackend`] drives the cycle-accurate RTL engine over the
//!   *lowered* design. Its cycle counts are the paper's §7 measurements.
//! - [`InterpBackend`] executes the *control tree* directly with the
//!   reference interpreter — the IL's executable semantics, before any
//!   lowering. Cycle counts differ from RTL (no FSM overhead), but final
//!   architectural state must agree; diffing the two backends' reports is
//!   a compiler-correctness check from the command line.

use crate::api::{Backend, BackendOpts, SimThroughput};
use calyx_core::errors::{CalyxResult, Error};
use calyx_core::ir::{validate, CellType, Context};
use calyx_sim::interp::Interpreter;
use calyx_sim::report::write_state_report;
use calyx_sim::rtl::Simulator;
use calyx_sim::SimError;
use std::cell::Cell;
use std::io;
use std::time::Instant;

/// Map a simulation failure into the compiler's error type, naming the
/// backend that hit it. These are *runtime* failures (timeouts, driver
/// conflicts) on well-formed programs, not malformed input.
fn sim_error(backend: &'static str, e: SimError) -> Error {
    Error::backend(backend, format!("simulation failed: {e}"))
}

/// Runs the cycle-accurate RTL simulator and reports cycles + final
/// state. Requires a lowered design (the RTL engine models the emitted
/// SystemVerilog 1:1).
pub struct SimBackend {
    cycles: u64,
    /// Cycles/wall-time of the last successful `emit` (see
    /// [`Backend::throughput`]); interior-mutable because `emit` takes
    /// `&self`.
    throughput: Cell<Option<SimThroughput>>,
}

impl Backend for SimBackend {
    const NAME: &'static str = "sim";
    const DESCRIPTION: &'static str =
        "simulate the lowered design cycle-accurately and report cycles + final state";
    const EXTENSION: &'static str = "sim";

    fn from_opts(opts: &BackendOpts) -> Self {
        SimBackend {
            cycles: opts.cycles,
            throughput: Cell::new(None),
        }
    }

    fn required_pipeline(&self) -> &'static [&'static str] {
        &["lower"]
    }

    fn validate(&self, ctx: &Context) -> CalyxResult<()> {
        ctx.entry()?;
        validate::require_lowered(ctx)
    }

    fn emit(&self, ctx: &Context, out: &mut dyn io::Write) -> CalyxResult<()> {
        self.validate(ctx)?;
        let top = ctx.entrypoint.as_str();
        let mut sim = Simulator::new(ctx, top).map_err(|e| sim_error(Self::NAME, e))?;
        let start = Instant::now();
        let stats = sim.run(self.cycles).map_err(|e| sim_error(Self::NAME, e))?;
        self.throughput.set(Some(SimThroughput {
            cycles: stats.cycles,
            wall: start.elapsed(),
        }));
        write_state_report(&sim, ctx.entry()?, stats, out)?;
        Ok(())
    }

    fn throughput(&self) -> Option<SimThroughput> {
        self.throughput.get()
    }
}

/// Runs the reference control-tree interpreter and reports cycles +
/// final state. Consumes *un-lowered* programs (its declared pipeline is
/// `none`, i.e. validation only); the design must be a single component.
pub struct InterpBackend {
    cycles: u64,
    /// See [`SimBackend`]'s field of the same name.
    throughput: Cell<Option<SimThroughput>>,
}

impl Backend for InterpBackend {
    const NAME: &'static str = "interp";
    const DESCRIPTION: &'static str =
        "execute the control tree with the reference interpreter and report cycles + final state";
    const EXTENSION: &'static str = "interp";

    fn from_opts(opts: &BackendOpts) -> Self {
        InterpBackend {
            cycles: opts.cycles,
            throughput: Cell::new(None),
        }
    }

    fn required_pipeline(&self) -> &'static [&'static str] {
        &["none"]
    }

    /// The interpreter executes exactly one component, so any
    /// component-typed cell is rejected here — up front, positioned at
    /// the offending declaration when the source map knows it — rather
    /// than surfacing later as a runtime `SimError` mid-emission.
    fn validate(&self, ctx: &Context) -> CalyxResult<()> {
        let entry = ctx.entry()?;
        for cell in entry.cells.iter() {
            if let CellType::Component { name } = &cell.prototype {
                let at = ctx
                    .sources
                    .cell(entry.name, cell.name)
                    .map(|loc| format!(" (declared at {}:{})", loc.line, loc.col))
                    .unwrap_or_default();
                return Err(Error::malformed(format!(
                    "cell `{}`{at} instantiates component `{name}`; the interpreter \
                     only supports single-component designs — lower the design \
                     (`-p lower`) and use `-b sim` instead",
                    cell.name
                )));
            }
        }
        Ok(())
    }

    fn emit(&self, ctx: &Context, out: &mut dyn io::Write) -> CalyxResult<()> {
        self.validate(ctx)?;
        let top = ctx.entrypoint.as_str();
        let mut interp = Interpreter::new(ctx, top).map_err(|e| sim_error(Self::NAME, e))?;
        let start = Instant::now();
        let stats = interp
            .run(self.cycles)
            .map_err(|e| sim_error(Self::NAME, e))?;
        self.throughput.set(Some(SimThroughput {
            cycles: stats.cycles,
            wall: start.elapsed(),
        }));
        write_state_report(&interp, ctx.entry()?, stats, out)?;
        Ok(())
    }

    fn throughput(&self) -> Option<SimThroughput> {
        self.throughput.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calyx_core::ir::parse_context;
    use calyx_core::passes;

    const COUNTER: &str = r#"
        component main() -> () {
          cells {
            i = std_reg(8);
            add = std_add(8);
            lt = std_lt(8);
          }
          wires {
            group init { i.in = 8'd0; i.write_en = 1'd1; init[done] = i.done; }
            group cond { lt.left = i.out; lt.right = 8'd3; cond[done] = 1'd1; }
            group incr {
              add.left = i.out; add.right = 8'd1;
              i.in = add.out; i.write_en = 1'd1; incr[done] = i.done;
            }
          }
          control { seq { init; while lt.out with cond { incr; } } }
        }
    "#;

    #[test]
    fn sim_backend_reports_cycles_and_state_of_the_lowered_design() {
        let mut ctx = parse_context(COUNTER).unwrap();
        passes::lower_pipeline().run(&mut ctx).unwrap();
        let backend = SimBackend::from_opts(&BackendOpts::default());
        backend.validate(&ctx).unwrap();
        let mut out = Vec::new();
        backend.emit(&ctx, &mut out).unwrap();
        let report = String::from_utf8(out).unwrap();
        assert!(report.starts_with("done in "), "{report}");
        assert!(report.contains("i = 3"), "{report}");
    }

    #[test]
    fn interp_backend_agrees_on_final_state_without_lowering() {
        let ctx = parse_context(COUNTER).unwrap();
        let backend = InterpBackend::from_opts(&BackendOpts::default());
        backend.validate(&ctx).unwrap();
        let mut out = Vec::new();
        backend.emit(&ctx, &mut out).unwrap();
        let report = String::from_utf8(out).unwrap();
        assert!(report.contains("i = 3"), "{report}");
    }

    #[test]
    fn sim_backend_rejects_unlowered_input_without_output() {
        let ctx = parse_context(COUNTER).unwrap();
        let backend = SimBackend::from_opts(&BackendOpts::default());
        assert!(backend.validate(&ctx).is_err());
        let mut out = Vec::new();
        assert!(backend.emit(&ctx, &mut out).is_err());
        assert!(out.is_empty(), "partial output on precondition failure");
    }

    #[test]
    fn cycle_budget_flows_through_backend_opts() {
        let mut ctx = parse_context(COUNTER).unwrap();
        passes::lower_pipeline().run(&mut ctx).unwrap();
        let backend = SimBackend::from_opts(&BackendOpts {
            cycles: 1,
            ..BackendOpts::default()
        });
        let err = backend.emit(&ctx, &mut Vec::new()).unwrap_err();
        assert!(format!("{err}").contains("1 cycles"), "{err}");
    }

    #[test]
    fn interp_backend_rejects_multi_component_designs() {
        let ctx = parse_context(
            r#"
            component child() -> () {
              cells { r = std_reg(8); }
              wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
              control { g; }
            }
            component main() -> () {
              cells { c = child(); }
              wires { group go { c.go = 1'd1; go[done] = c.done; } }
              control { go; }
            }"#,
        )
        .unwrap();
        let backend = InterpBackend::from_opts(&BackendOpts::default());
        let err = backend.validate(&ctx).unwrap_err();
        let msg = format!("{err}");
        // The rejection is up-front, names the offending cell, and points
        // at its declaration (the source map knows where `c` was parsed).
        assert!(msg.contains("cell `c`"), "{msg}");
        assert!(msg.contains("component `child`"), "{msg}");
        assert!(msg.contains("declared at "), "{msg}");
        assert!(msg.contains("`-b sim`"), "{msg}");
        // Emission on the invalid design fails without writing anything.
        let mut out = Vec::new();
        assert!(backend.emit(&ctx, &mut out).is_err());
        assert!(out.is_empty(), "partial output on precondition failure");
    }

    #[test]
    fn interp_rejection_survives_a_missing_source_map() {
        // Generated programs (frontends, builders) have no source
        // positions; the message degrades to span-free.
        let mut ctx = parse_context(
            r#"
            component child() -> () {
              cells { r = std_reg(8); }
              wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
              control { g; }
            }
            component main() -> () {
              cells { c = child(); }
              wires { group go { c.go = 1'd1; go[done] = c.done; } }
              control { go; }
            }"#,
        )
        .unwrap();
        ctx.sources = Default::default();
        let backend = InterpBackend::from_opts(&BackendOpts::default());
        let msg = format!("{}", backend.validate(&ctx).unwrap_err());
        assert!(msg.contains("cell `c`"), "{msg}");
        assert!(!msg.contains("declared at"), "{msg}");
    }

    #[test]
    fn simulation_backends_record_throughput_on_success() {
        let mut lowered = parse_context(COUNTER).unwrap();
        passes::lower_pipeline().run(&mut lowered).unwrap();
        let sim = SimBackend::from_opts(&BackendOpts::default());
        assert!(
            Backend::throughput(&sim).is_none(),
            "throughput before any run"
        );
        sim.emit(&lowered, &mut Vec::new()).unwrap();
        let t = Backend::throughput(&sim).expect("throughput after a successful run");
        assert!(t.cycles > 0);
        assert!(t.cycles_per_sec() > 0.0);

        let ctx = parse_context(COUNTER).unwrap();
        let interp = InterpBackend::from_opts(&BackendOpts::default());
        interp.emit(&ctx, &mut Vec::new()).unwrap();
        let t = Backend::throughput(&interp).expect("interp throughput");
        assert!(t.cycles > 0);
    }
}
