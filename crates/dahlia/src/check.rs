//! Scope, width, and hardware-mapping checks.
//!
//! A light-weight stand-in for Dahlia's substructural type system: rather
//! than affine index types, we enforce the consequences the paper relies
//! on — every expression has a consistent width, conditions are
//! combinational, unordered statements do not race on a register or memory,
//! and banking factors line up with loop structure so that lowering can
//! resolve every access to a single physical port.

use crate::ast::{Block, Expr, MemDecl, Program, Stmt};
use calyx_core::errors::{CalyxResult, Error};
use calyx_core::ir::Id;
use std::collections::{BTreeSet, HashMap};

/// Widths of declared variables and memories.
#[derive(Debug, Clone, Default)]
pub struct Env {
    /// Variable widths.
    pub vars: HashMap<Id, u32>,
    /// Memory declarations.
    pub mems: HashMap<Id, MemDecl>,
}

impl Env {
    /// Build the initial environment from a program's declarations.
    pub fn from_program(p: &Program) -> Self {
        let mut env = Env::default();
        for d in &p.decls {
            env.mems.insert(d.name, d.clone());
        }
        env
    }
}

/// Check a whole program.
///
/// # Errors
///
/// Returns [`Error::Malformed`] describing the first violation.
pub fn check(p: &Program) -> CalyxResult<()> {
    for d in &p.decls {
        let banked_dims = d.dims.iter().filter(|(_, b)| *b > 1).count();
        if banked_dims > 1 {
            return Err(Error::malformed(format!(
                "memory `{}`: at most one dimension may be banked",
                d.name
            )));
        }
        for (size, banks) in &d.dims {
            if *size == 0 {
                return Err(Error::malformed(format!(
                    "memory `{}` has a zero dimension",
                    d.name
                )));
            }
            if *banks == 0 || size % banks != 0 {
                return Err(Error::malformed(format!(
                    "memory `{}`: banking factor {banks} must divide size {size}",
                    d.name
                )));
            }
        }
    }
    let mut env = Env::from_program(p);
    check_stmt(&p.body, &mut env)
}

/// Infer the width of an expression; literals are flexible (`None`).
///
/// # Errors
///
/// Returns [`Error::Malformed`] on undeclared names, index-arity
/// mismatches, and width conflicts.
pub fn expr_width(e: &Expr, env: &Env) -> CalyxResult<Option<u32>> {
    match e {
        Expr::Num(_) => Ok(None),
        Expr::Var(v) => env
            .vars
            .get(v)
            .copied()
            .map(Some)
            .ok_or_else(|| Error::malformed(format!("undeclared variable `{v}`"))),
        Expr::ReadMem { mem, indices, .. } => {
            let decl = env
                .mems
                .get(mem)
                .ok_or_else(|| Error::malformed(format!("undeclared memory `{mem}`")))?;
            if indices.len() != decl.dims.len() {
                return Err(Error::malformed(format!(
                    "memory `{mem}` has {} dimension(s), indexed with {}",
                    decl.dims.len(),
                    indices.len()
                )));
            }
            for i in indices {
                expr_width(i, env)?;
            }
            Ok(Some(decl.width))
        }
        Expr::Binop { op, lhs, rhs } => {
            let lw = expr_width(lhs, env)?;
            let rw = expr_width(rhs, env)?;
            let operand = match (lw, rw) {
                (Some(a), Some(b)) if a != b && !op_allows_mixed(*op) => {
                    return Err(Error::malformed(format!(
                        "width mismatch: {a}-bit and {b}-bit operands of `{op:?}`"
                    )))
                }
                (Some(a), _) => Some(a),
                (None, b) => b,
            };
            if op.is_comparison() {
                Ok(Some(1))
            } else {
                Ok(operand)
            }
        }
        Expr::Sqrt(inner) => expr_width(inner, env),
    }
}

/// Shift amounts may be narrower than the shifted value.
fn op_allows_mixed(op: crate::ast::BinOp) -> bool {
    matches!(op, crate::ast::BinOp::Shl | crate::ast::BinOp::Shr)
}

fn check_cond(cond: &Expr, env: &Env) -> CalyxResult<()> {
    if cond.sequential_ops() > 0 {
        return Err(Error::malformed(
            "conditions must be combinational (no *, /, %, sqrt)",
        ));
    }
    let w = expr_width(cond, env)?;
    if !matches!(w, Some(1)) {
        return Err(Error::malformed(format!(
            "conditions must be 1-bit comparisons, found width {w:?}"
        )));
    }
    Ok(())
}

fn check_block(b: &Block, env: &mut Env) -> CalyxResult<()> {
    for s in b {
        check_stmt(s, env)?;
    }
    Ok(())
}

/// Targets written by a statement (registers and memories), used for the
/// unordered-composition race check.
fn written_targets(s: &Stmt, out: &mut BTreeSet<Id>) {
    match s {
        Stmt::Let { var, .. } | Stmt::AssignVar { var, .. } => {
            out.insert(*var);
        }
        Stmt::Store { mem, .. } => {
            out.insert(*mem);
        }
        Stmt::If { then_, else_, .. } => {
            for s in then_.iter().chain(else_) {
                written_targets(s, out);
            }
        }
        Stmt::While { body, .. } | Stmt::For { body, .. } => {
            for s in body {
                written_targets(s, out);
            }
        }
        Stmt::Seq(ss) | Stmt::Par(ss) => {
            for s in ss {
                written_targets(s, out);
            }
        }
    }
}

fn check_stmt(s: &Stmt, env: &mut Env) -> CalyxResult<()> {
    match s {
        Stmt::Let { var, width, init } => {
            let iw = expr_width(init, env)?;
            if let Some(iw) = iw {
                if iw != *width {
                    return Err(Error::malformed(format!(
                        "`let {var}`: declared {width} bits but initializer is {iw} bits"
                    )));
                }
            }
            if let Some(prev) = env.vars.insert(*var, *width) {
                if prev != *width {
                    return Err(Error::malformed(format!(
                        "variable `{var}` redeclared with width {width} (was {prev})"
                    )));
                }
            }
            Ok(())
        }
        Stmt::AssignVar { var, rhs } => {
            let vw = *env
                .vars
                .get(var)
                .ok_or_else(|| Error::malformed(format!("assignment to undeclared `{var}`")))?;
            if let Some(rw) = expr_width(rhs, env)? {
                if rw != vw {
                    return Err(Error::malformed(format!(
                        "`{var} := …`: {vw}-bit variable, {rw}-bit value"
                    )));
                }
            }
            Ok(())
        }
        Stmt::Store {
            mem, indices, rhs, ..
        } => {
            let decl =
                env.mems.get(mem).cloned().ok_or_else(|| {
                    Error::malformed(format!("store to undeclared memory `{mem}`"))
                })?;
            if indices.len() != decl.dims.len() {
                return Err(Error::malformed(format!(
                    "memory `{mem}` has {} dimension(s), indexed with {}",
                    decl.dims.len(),
                    indices.len()
                )));
            }
            for i in indices {
                expr_width(i, env)?;
            }
            if let Some(rw) = expr_width(rhs, env)? {
                if rw != decl.width {
                    return Err(Error::malformed(format!(
                        "store to `{mem}`: {0}-bit memory, {rw}-bit value",
                        decl.width
                    )));
                }
            }
            Ok(())
        }
        Stmt::If { cond, then_, else_ } => {
            check_cond(cond, env)?;
            check_block(then_, env)?;
            check_block(else_, env)
        }
        Stmt::While { cond, body } => {
            check_cond(cond, env)?;
            check_block(body, env)
        }
        Stmt::For {
            var,
            width,
            lo,
            hi,
            unroll,
            body,
        } => {
            if hi <= lo {
                return Err(Error::malformed(format!(
                    "`for {var}`: empty range {lo}..{hi}"
                )));
            }
            if *unroll == 0 || (hi - lo) % unroll != 0 {
                return Err(Error::malformed(format!(
                    "`for {var}`: unroll {unroll} must divide trip count {}",
                    hi - lo
                )));
            }
            env.vars.insert(*var, *width);
            check_block(body, env)
        }
        Stmt::Seq(ss) => {
            for s in ss {
                check_stmt(s, env)?;
            }
            Ok(())
        }
        Stmt::Par(ss) => {
            // The affine-flavored restriction: unordered statements must not
            // write the same register or memory.
            let mut seen: BTreeSet<Id> = BTreeSet::new();
            for s in ss {
                let mut targets = BTreeSet::new();
                written_targets(s, &mut targets);
                // `Let` declares before the conflict check so later siblings
                // can reference it (widths only; ordering is still parallel).
                check_stmt(s, env)?;
                for t in targets {
                    if !seen.insert(t) {
                        return Err(Error::malformed(format!(
                            "unordered statements both write `{t}`; order them with `---`"
                        )));
                    }
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> CalyxResult<()> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn accepts_well_formed_programs() {
        check_src(
            "decl a: ubit<32>[8];
             let x: ubit<32> = 0;
             ---
             for (let i: ubit<4> = 0..8) {
               a[i] := x + 1;
             }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_width_mismatches() {
        let err = check_src(
            "let x: ubit<8> = 0;
             let y: ubit<16> = 0;
             ---
             x := y;",
        )
        .unwrap_err();
        assert!(err.to_string().contains("8-bit"), "{err}");
    }

    #[test]
    fn rejects_undeclared_names() {
        assert!(check_src("x := 1;").is_err());
        assert!(check_src("let x: ubit<8> = m[0];").is_err());
    }

    #[test]
    fn rejects_wrong_index_arity() {
        let err = check_src("decl a: ubit<8>[4][4]; a[1] := 0;").unwrap_err();
        assert!(err.to_string().contains("dimension"), "{err}");
    }

    #[test]
    fn rejects_sequential_conditions() {
        let err = check_src(
            "let x: ubit<8> = 1;
             ---
             while (x * 2 < 10) { x := x + 1; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("combinational"), "{err}");
    }

    #[test]
    fn rejects_non_boolean_conditions() {
        let err = check_src(
            "let x: ubit<8> = 1;
             ---
             if (x + 1) { x := 0; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("1-bit"), "{err}");
    }

    #[test]
    fn rejects_parallel_write_races() {
        let err = check_src(
            "let x: ubit<8> = 0;
             ---
             x := 1;
             x := 2;",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unordered"), "{err}");
    }

    #[test]
    fn rejects_bad_banking() {
        let err = check_src("decl a: ubit<8>[6 bank 4]; a[0] := 1;").unwrap_err();
        assert!(err.to_string().contains("banking factor"), "{err}");
        let err = check_src("decl a: ubit<8>[4 bank 2][4 bank 2]; a[0][0] := 1;").unwrap_err();
        assert!(err.to_string().contains("one dimension"), "{err}");
    }

    #[test]
    fn rejects_bad_unroll() {
        let err = check_src(
            "decl a: ubit<8>[8];
             for (let i: ubit<4> = 0..8) unroll 3 { a[i] := 1; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unroll"), "{err}");
    }
}
