//! Calyx code generation from lowered Dahlia (paper §6.2).
//!
//! The mapping is one-to-one, exactly as the paper describes: every memory
//! and variable assignment generates a group representing the update;
//! ordered composition becomes `seq`; unordered composition becomes `par`;
//! loops and conditionals map to `while` and `if` with combinational
//! condition groups. Groups with fixed latency carry `"static"`
//! annotations (register/memory writes are 1 cycle, multiplier/divider
//! chains are 5); `sqrt` groups have data-dependent latency and are left
//! un-annotated, exercising the compiler's mixed latency-(in)sensitive
//! compilation.

use crate::ast::{BinOp, Block, Expr, MemDecl, Program, Stmt};
use crate::check::{expr_width, Env};
use calyx_core::errors::{CalyxResult, Error};
use calyx_core::ir::{attr, Atom, Builder, Context, Control, Guard, Id, PortRef};
use calyx_core::utils::bits_needed;
use std::collections::HashMap;

/// The physical memory cells implementing a (possibly banked) declaration,
/// in bank order, together with the per-bank dimension sizes.
pub fn memory_banks(decl: &MemDecl) -> Vec<(String, Vec<u64>)> {
    if !decl.is_banked() {
        return vec![(
            decl.name.to_string(),
            decl.dims.iter().map(|(s, _)| *s).collect(),
        )];
    }
    let (dim, (_, banks)) = decl
        .dims
        .iter()
        .enumerate()
        .find(|(_, (_, b))| *b > 1)
        .map(|(d, sb)| (d, *sb))
        .expect("banked");
    (0..banks)
        .map(|j| {
            let dims: Vec<u64> = decl
                .dims
                .iter()
                .enumerate()
                .map(|(d, (s, _))| if d == dim { s / banks } else { *s })
                .collect();
            (format!("{}_b{j}", decl.name), dims)
        })
        .collect()
}

/// Split row-major logical contents into per-bank contents (cyclic layout
/// on the banked dimension). Inverse of [`join_banks`].
pub fn split_banks(decl: &MemDecl, data: &[u64]) -> Vec<Vec<u64>> {
    let banks = decl.bank_count();
    if banks == 1 {
        return vec![data.to_vec()];
    }
    let (dim, (_, b)) = decl
        .dims
        .iter()
        .enumerate()
        .find(|(_, (_, b))| *b > 1)
        .map(|(d, sb)| (d, *sb))
        .expect("banked");
    let sizes: Vec<u64> = decl.dims.iter().map(|(s, _)| *s).collect();
    let mut out = vec![Vec::new(); b as usize];
    let mut idx = vec![0u64; sizes.len()];
    for &v in data {
        let bank = (idx[dim] % b) as usize;
        out[bank].push(v);
        // Row-major increment.
        for d in (0..sizes.len()).rev() {
            idx[d] += 1;
            if idx[d] < sizes[d] {
                break;
            }
            idx[d] = 0;
        }
    }
    out
}

/// Reassemble per-bank contents into the logical row-major order.
pub fn join_banks(decl: &MemDecl, banks_data: &[Vec<u64>]) -> Vec<u64> {
    let banks = decl.bank_count();
    if banks == 1 {
        return banks_data[0].clone();
    }
    let (dim, (_, b)) = decl
        .dims
        .iter()
        .enumerate()
        .find(|(_, (_, b))| *b > 1)
        .map(|(d, sb)| (d, *sb))
        .expect("banked");
    let sizes: Vec<u64> = decl.dims.iter().map(|(s, _)| *s).collect();
    let total: u64 = sizes.iter().product();
    let mut cursors = vec![0usize; b as usize];
    let mut out = Vec::with_capacity(total as usize);
    let mut idx = vec![0u64; sizes.len()];
    for _ in 0..total {
        let bank = (idx[dim] % b) as usize;
        out.push(banks_data[bank][cursors[bank]]);
        cursors[bank] += 1;
        for d in (0..sizes.len()).rev() {
            idx[d] += 1;
            if idx[d] < sizes[d] {
                break;
            }
            idx[d] = 0;
        }
    }
    out
}

/// Emit a lowered program as a Calyx context with a `main` component.
///
/// # Errors
///
/// Returns [`Error::Malformed`] on constructs lowering should have removed.
pub fn emit(p: &Program) -> CalyxResult<Context> {
    let mut ctx = Context::new();
    let mut main = ctx.new_component("main");
    let control = {
        let mut b = Builder::new(&mut main, &ctx);
        let mut em = Emitter {
            env: Env::from_program(p),
            mem_cells: HashMap::new(),
            counter: 0,
        };
        // Materialize physical memories.
        for decl in &p.decls {
            let banks = memory_banks(decl);
            for (i, (name, dims)) in banks.iter().enumerate() {
                let mut params = vec![u64::from(decl.width)];
                params.extend(dims.iter().copied());
                params.extend(dims.iter().map(|&s| u64::from(addr_width(s))));
                let prim = match dims.len() {
                    1 => "std_mem_d1",
                    2 => "std_mem_d2",
                    3 => "std_mem_d3",
                    n => {
                        return Err(Error::malformed(format!(
                            "{n}-dimensional memories are not supported"
                        )))
                    }
                };
                let cell = b.add_primitive(name, prim, &params);
                b.set_cell_attribute(cell, attr::external(), 1);
                let bank = if decl.is_banked() {
                    Some(i as u64)
                } else {
                    None
                };
                em.mem_cells.insert((decl.name, bank), cell);
            }
        }
        em.stmt_control(&mut b, &p.body)?
    };
    main.control = control;
    ctx.add_component(main);
    Ok(ctx)
}

fn addr_width(size: u64) -> u32 {
    bits_needed(size.saturating_sub(1)).max(1)
}

/// Accumulated facts about the group being generated.
#[derive(Default)]
struct GroupCtx {
    /// Done ports of sequential units started in this group.
    unit_dones: Vec<PortRef>,
    /// Whether a data-dependent-latency unit (sqrt) is present.
    has_sqrt: bool,
    /// Memory cells whose address ports this group already drives; lowering
    /// guarantees any further access in the same statement uses identical
    /// indices (same-port sharing), so re-driving is skipped.
    driven_mems: std::collections::HashSet<Id>,
}

struct Emitter {
    env: Env,
    mem_cells: HashMap<(Id, Option<u64>), Id>,
    counter: usize,
}

impl Emitter {
    fn fresh(&mut self, prefix: &str) -> String {
        let n = self.counter;
        self.counter += 1;
        format!("{prefix}{n}")
    }

    /// The register backing a variable, created on first use.
    fn var_reg(&mut self, b: &mut Builder, var: Id, width: u32) -> Id {
        self.env.vars.insert(var, width);
        if b.component().cells.contains(var) {
            var
        } else {
            b.add_primitive(var.as_str(), "std_reg", &[u64::from(width)])
        }
    }

    fn mem_cell(&self, mem: Id, bank: Option<u64>) -> CalyxResult<Id> {
        self.mem_cells.get(&(mem, bank)).copied().ok_or_else(|| {
            Error::malformed(format!("unresolved memory access `{mem}` (bank {bank:?})"))
        })
    }

    fn stmt_control(&mut self, b: &mut Builder, s: &Stmt) -> CalyxResult<Control> {
        Ok(match s {
            Stmt::Let { var, width, init } => {
                let reg = self.var_reg(b, *var, *width);
                self.write_reg_group(b, reg, *width, init)?
            }
            Stmt::AssignVar { var, rhs } => {
                let width = *self
                    .env
                    .vars
                    .get(var)
                    .ok_or_else(|| Error::malformed(format!("undeclared `{var}`")))?;
                let reg = self.var_reg(b, *var, width);
                self.write_reg_group(b, reg, width, rhs)?
            }
            Stmt::Store {
                mem,
                bank,
                indices,
                rhs,
            } => self.store_group(b, *mem, *bank, indices, rhs)?,
            Stmt::If { cond, then_, else_ } => {
                let (port, cond_group) = self.cond_group(b, cond)?;
                let t = self.block_control(b, then_)?;
                let f = self.block_control(b, else_)?;
                Control::if_(port, Some(cond_group), t, f)
            }
            Stmt::While { cond, body } => {
                let (port, cond_group) = self.cond_group(b, cond)?;
                let body = self.block_control(b, body)?;
                Control::while_(port, Some(cond_group), body)
            }
            Stmt::For {
                var,
                width,
                lo,
                hi,
                unroll,
                body,
            } => {
                if *unroll != 1 {
                    return Err(Error::malformed(
                        "unlowered unrolled loop reached the backend",
                    ));
                }
                if u64::from(bits_needed(*hi)) > u64::from(*width) {
                    return Err(Error::malformed(format!(
                        "loop bound {hi} does not fit in {width}-bit counter `{var}`"
                    )));
                }
                let reg = self.var_reg(b, *var, *width);

                // init: var <- lo
                let init = b.add_static_group(&self.fresh("init"), 1);
                b.asgn_const(init, (reg, "in"), *lo, *width);
                b.asgn_const(init, (reg, "write_en"), 1, 1);
                b.group_done(init, (reg, "done"));

                // cond: var < hi
                let lt = b.add_primitive(&self.fresh("lt"), "std_lt", &[u64::from(*width)]);
                let cond = b.add_group(&self.fresh("cond"));
                b.asgn(cond, (lt, "left"), (reg, "out"));
                b.asgn_const(cond, (lt, "right"), *hi, *width);
                b.group_done_const(cond, 1);

                // incr: var <- var + 1
                let add = b.add_primitive(&self.fresh("incr_add"), "std_add", &[u64::from(*width)]);
                let incr = b.add_static_group(&self.fresh("incr"), 1);
                b.asgn(incr, (add, "left"), (reg, "out"));
                b.asgn_const(incr, (add, "right"), 1, *width);
                b.asgn(incr, (reg, "in"), (add, "out"));
                b.asgn_const(incr, (reg, "write_en"), 1, 1);
                b.group_done(incr, (reg, "done"));

                let body = self.block_control(b, body)?;
                let loop_body = Control::seq(vec![body, Control::enable(incr)]);
                Control::seq(vec![
                    Control::enable(init),
                    Control::while_(PortRef::cell(lt, "out"), Some(cond), loop_body),
                ])
            }
            Stmt::Seq(ss) => Control::seq(
                ss.iter()
                    .map(|s| self.stmt_control(b, s))
                    .collect::<CalyxResult<Vec<_>>>()?,
            ),
            Stmt::Par(ss) => Control::par(
                ss.iter()
                    .map(|s| self.stmt_control(b, s))
                    .collect::<CalyxResult<Vec<_>>>()?,
            ),
        })
    }

    fn block_control(&mut self, b: &mut Builder, block: &Block) -> CalyxResult<Control> {
        let stmts = block
            .iter()
            .map(|s| self.stmt_control(b, s))
            .collect::<CalyxResult<Vec<_>>>()?;
        Ok(match stmts.len() {
            0 => Control::Empty,
            1 => stmts.into_iter().next().expect("length checked"),
            _ => Control::seq(stmts),
        })
    }

    /// Group computing `reg <- rhs`.
    fn write_reg_group(
        &mut self,
        b: &mut Builder,
        reg: Id,
        width: u32,
        rhs: &Expr,
    ) -> CalyxResult<Control> {
        let g = b.add_group(&self.fresh("upd"));
        let mut gctx = GroupCtx::default();
        let (atom, aw) = self.compile_expr(b, g, rhs, width, &mut gctx)?;
        let atom = adapt(b, g, self, atom, aw, width);
        drive(b, g, PortRef::cell(reg, "in"), atom);
        self.finish_write(
            b,
            g,
            PortRef::cell(reg, "write_en"),
            PortRef::cell(reg, "done"),
            &gctx,
        );
        Ok(Control::enable(g))
    }

    /// Group computing `mem[indices] <- rhs`.
    fn store_group(
        &mut self,
        b: &mut Builder,
        mem: Id,
        bank: Option<u64>,
        indices: &[Expr],
        rhs: &Expr,
    ) -> CalyxResult<Control> {
        let decl = self
            .env
            .mems
            .get(&mem)
            .cloned()
            .ok_or_else(|| Error::malformed(format!("undeclared memory `{mem}`")))?;
        let cell = self.mem_cell(mem, bank)?;
        let g = b.add_group(&self.fresh("st"));
        let mut gctx = GroupCtx::default();
        self.drive_addresses(b, g, cell, &decl, bank, indices, &mut gctx)?;
        let (atom, aw) = self.compile_expr(b, g, rhs, decl.width, &mut gctx)?;
        let atom = adapt(b, g, self, atom, aw, decl.width);
        match atom {
            Atom::Port(p) => b.asgn(g, PortRef::cell(cell, "write_data"), p),
            Atom::Const { val, width } => {
                b.asgn_const(g, PortRef::cell(cell, "write_data"), val, width)
            }
        }
        self.finish_write(
            b,
            g,
            PortRef::cell(cell, "write_en"),
            PortRef::cell(cell, "done"),
            &gctx,
        );
        Ok(Control::enable(g))
    }

    /// Wire the write-enable and done for a group, annotating its latency.
    fn finish_write(
        &mut self,
        b: &mut Builder,
        g: Id,
        write_en: PortRef,
        done: PortRef,
        gctx: &GroupCtx,
    ) {
        if gctx.unit_dones.is_empty() {
            b.asgn_const(g, write_en, 1, 1);
            b.set_group_attribute(g, attr::static_(), 1);
        } else {
            let guard = gctx
                .unit_dones
                .iter()
                .map(|p| Guard::Port(*p))
                .reduce(Guard::and)
                .expect("non-empty");
            b.asgn_const_guarded(g, write_en, 1, 1, guard);
            if !gctx.has_sqrt {
                // Units start together and take 4 cycles; the write adds 1.
                b.set_group_attribute(g, attr::static_(), 5);
            }
        }
        b.group_done(g, done);
    }

    /// Condition group: a combinational computation of a 1-bit port.
    fn cond_group(&mut self, b: &mut Builder, cond: &Expr) -> CalyxResult<(PortRef, Id)> {
        let g = b.add_group(&self.fresh("cond"));
        let mut gctx = GroupCtx::default();
        let (atom, w) = self.compile_expr(b, g, cond, 1, &mut gctx)?;
        if !gctx.unit_dones.is_empty() {
            return Err(Error::malformed("conditions must be combinational"));
        }
        let port = match atom {
            Atom::Port(p) if w == 1 => p,
            Atom::Port(_) => return Err(Error::malformed("conditions must be 1 bit wide")),
            Atom::Const { val, .. } => {
                // Materialize constant conditions through a wire.
                let wire = b.add_primitive(&self.fresh("cw"), "std_wire", &[1]);
                b.asgn_const(g, (wire, "in"), val, 1);
                PortRef::cell(wire, "out")
            }
        };
        b.group_done_const(g, 1);
        Ok((port, g))
    }

    #[allow(clippy::too_many_arguments)]
    fn drive_addresses(
        &mut self,
        b: &mut Builder,
        g: Id,
        cell: Id,
        decl: &MemDecl,
        bank: Option<u64>,
        indices: &[Expr],
        gctx: &mut GroupCtx,
    ) -> CalyxResult<()> {
        if !gctx.driven_mems.insert(cell) {
            return Ok(());
        }
        let sizes: Vec<u64> = memory_banks(decl)
            .into_iter()
            .nth(bank.unwrap_or(0) as usize)
            .map(|(_, dims)| dims)
            .ok_or_else(|| {
                Error::malformed(format!("bank {bank:?} out of range for `{}`", decl.name))
            })?;
        for (d, idx) in indices.iter().enumerate() {
            let aw = addr_width(sizes[d]);
            let (atom, w) = self.compile_expr(b, g, idx, aw, gctx)?;
            let atom = adapt(b, g, self, atom, w, aw);
            let port = PortRef::cell(cell, format!("addr{d}").as_str());
            match atom {
                Atom::Port(p) => b.asgn(g, port, p),
                Atom::Const { val, width } => b.asgn_const(g, port, val, width),
            }
        }
        Ok(())
    }

    /// Compile an expression into cells and in-group assignments; returns
    /// the atom carrying the value and its width.
    fn compile_expr(
        &mut self,
        b: &mut Builder,
        g: Id,
        e: &Expr,
        expected: u32,
        gctx: &mut GroupCtx,
    ) -> CalyxResult<(Atom, u32)> {
        Ok(match e {
            Expr::Num(n) => (Atom::constant(*n, expected), expected),
            Expr::Var(v) => {
                let w = *self
                    .env
                    .vars
                    .get(v)
                    .ok_or_else(|| Error::malformed(format!("undeclared `{v}`")))?;
                (Atom::Port(PortRef::cell(*v, "out")), w)
            }
            Expr::ReadMem { mem, bank, indices } => {
                let decl = self
                    .env
                    .mems
                    .get(mem)
                    .cloned()
                    .ok_or_else(|| Error::malformed(format!("undeclared memory `{mem}`")))?;
                let cell = self.mem_cell(*mem, *bank)?;
                self.drive_addresses(b, g, cell, &decl, *bank, indices, gctx)?;
                (Atom::Port(PortRef::cell(cell, "read_data")), decl.width)
            }
            Expr::Binop { op, lhs, rhs } => {
                let w = expr_width(e, &self.env)?.unwrap_or(expected);
                let opw = if op.is_comparison() {
                    expr_width(lhs, &self.env)?
                        .or(expr_width(rhs, &self.env)?)
                        .unwrap_or(expected)
                } else {
                    w
                };
                let (la, lw) = self.compile_expr(b, g, lhs, opw, gctx)?;
                let (ra, rw) = self.compile_expr(b, g, rhs, opw, gctx)?;
                let la = adapt(b, g, self, la, lw, opw);
                let ra = adapt(b, g, self, ra, rw, opw);
                match op {
                    BinOp::Mul | BinOp::Div | BinOp::Rem => {
                        let (prim, out_port) = match op {
                            BinOp::Mul => ("std_mult_pipe", "out"),
                            BinOp::Div => ("std_div_pipe", "out_quotient"),
                            _ => ("std_div_pipe", "out_remainder"),
                        };
                        let unit = b.add_primitive(&self.fresh("unit"), prim, &[u64::from(opw)]);
                        drive(b, g, PortRef::cell(unit, "left"), la);
                        drive(b, g, PortRef::cell(unit, "right"), ra);
                        let done = PortRef::cell(unit, "done");
                        b.asgn_const_guarded(g, (unit, "go"), 1, 1, Guard::Port(done).not());
                        gctx.unit_dones.push(done);
                        (Atom::Port(PortRef::cell(unit, out_port)), opw)
                    }
                    _ => {
                        let prim = comb_prim(*op);
                        let cell = b.add_primitive(&self.fresh("op"), prim, &[u64::from(opw)]);
                        drive(b, g, PortRef::cell(cell, "left"), la);
                        drive(b, g, PortRef::cell(cell, "right"), ra);
                        let out_w = if op.is_comparison() { 1 } else { opw };
                        (Atom::Port(PortRef::cell(cell, "out")), out_w)
                    }
                }
            }
            Expr::Sqrt(inner) => {
                let (ia, iw) = self.compile_expr(b, g, inner, expected, gctx)?;
                let unit = b.add_primitive(&self.fresh("sqrt"), "std_sqrt", &[u64::from(iw)]);
                drive(b, g, PortRef::cell(unit, "in"), ia);
                let done = PortRef::cell(unit, "done");
                b.asgn_const_guarded(g, (unit, "go"), 1, 1, Guard::Port(done).not());
                gctx.unit_dones.push(done);
                gctx.has_sqrt = true;
                (Atom::Port(PortRef::cell(unit, "out")), iw)
            }
        })
    }
}

fn comb_prim(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "std_add",
        BinOp::Sub => "std_sub",
        BinOp::And => "std_and",
        BinOp::Or => "std_or",
        BinOp::Xor => "std_xor",
        BinOp::Shl => "std_lsh",
        BinOp::Shr => "std_rsh",
        BinOp::Lt => "std_lt",
        BinOp::Gt => "std_gt",
        BinOp::Eq => "std_eq",
        BinOp::Neq => "std_neq",
        BinOp::Ge => "std_ge",
        BinOp::Le => "std_le",
        BinOp::Mul | BinOp::Div | BinOp::Rem => unreachable!("sequential ops handled separately"),
    }
}

fn drive(b: &mut Builder, g: Id, dst: PortRef, atom: Atom) {
    match atom {
        Atom::Port(p) => b.asgn(g, dst, p),
        Atom::Const { val, width } => b.asgn_const(g, dst, val, width),
    }
}

/// Width adaptation: slice down or zero-pad up through adapter cells.
fn adapt(b: &mut Builder, g: Id, em: &mut Emitter, atom: Atom, from: u32, to: u32) -> Atom {
    if from == to {
        return atom;
    }
    match atom {
        Atom::Const { val, .. } => Atom::constant(val, to),
        Atom::Port(p) => {
            let prim = if from > to { "std_slice" } else { "std_pad" };
            let cell = b.add_primitive(&em.fresh("adapt"), prim, &[u64::from(from), u64::from(to)]);
            b.asgn(g, PortRef::cell(cell, "in"), p);
            Atom::Port(PortRef::cell(cell, "out"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use calyx_core::ir::validate;
    use calyx_core::passes;
    use calyx_sim::rtl::Simulator;

    fn run(src: &str, init: &[(&str, Vec<u64>)]) -> Simulator {
        let mut ctx = compile(src).unwrap();
        validate::validate_context(&ctx).expect("emitted Calyx is well-formed");
        passes::lower_pipeline().run(&mut ctx).unwrap();
        let mut sim = Simulator::new(&ctx, "main").unwrap();
        for (mem, data) in init {
            sim.set_memory(&[mem], data).unwrap();
        }
        sim.run(2_000_000).unwrap();
        sim
    }

    #[test]
    fn paper_example_compiles_to_if() {
        // §6.2's exact example.
        let src = "
            let x: ubit<32> = 0;
            ---
            if (x > 10) { x := 1; } else { x := 2; }
        ";
        let sim = run(src, &[]);
        assert_eq!(sim.register_value(&["x"]).unwrap(), 2);
    }

    #[test]
    fn for_loop_accumulates() {
        let src = "
            decl a: ubit<32>[8];
            decl out: ubit<32>[1];
            let acc: ubit<32> = 0;
            ---
            for (let i: ubit<4> = 0..8) {
              acc := acc + a[i];
            }
            ---
            out[0] := acc;
        ";
        let a: Vec<u64> = (1..=8).collect();
        let sim = run(src, &[("a", a)]);
        assert_eq!(sim.memory(&["out"]).unwrap(), vec![36]);
    }

    #[test]
    fn multiplication_uses_pipelined_unit() {
        let src = "
            decl out: ubit<32>[1];
            let x: ubit<32> = 6;
            ---
            let y: ubit<32> = x * 7;
            ---
            out[0] := y;
        ";
        let sim = run(src, &[]);
        assert_eq!(sim.memory(&["out"]).unwrap(), vec![42]);
    }

    #[test]
    fn division_and_remainder() {
        let src = "
            decl out: ubit<32>[2];
            let x: ubit<32> = 17;
            ---
            let q: ubit<32> = x / 5;
            ---
            let r: ubit<32> = x % 5;
            ---
            out[0] := q;
            ---
            out[1] := r;
        ";
        let sim = run(src, &[]);
        assert_eq!(sim.memory(&["out"]).unwrap(), vec![3, 2]);
    }

    #[test]
    fn sqrt_is_dynamic_but_correct() {
        let src = "
            decl out: ubit<32>[1];
            let x: ubit<32> = 144;
            ---
            let y: ubit<32> = sqrt(x);
            ---
            out[0] := y;
        ";
        let sim = run(src, &[]);
        assert_eq!(sim.memory(&["out"]).unwrap(), vec![12]);
    }

    #[test]
    fn unrolled_loop_with_banked_memory() {
        let src = "
            decl a: ubit<32>[8 bank 2];
            decl b: ubit<32>[8 bank 2];
            for (let i: ubit<4> = 0..8) unroll 2 {
              b[i] := a[i] + 1;
            }
        ";
        let decl = MemDecl {
            name: Id::new("a"),
            width: 32,
            dims: vec![(8, 2)],
        };
        let data: Vec<u64> = (0..8).collect();
        let banks = split_banks(&decl, &data);
        let mut ctx = compile(src).unwrap();
        passes::lower_pipeline().run(&mut ctx).unwrap();
        let mut sim = Simulator::new(&ctx, "main").unwrap();
        sim.set_memory(&["a_b0"], &banks[0]).unwrap();
        sim.set_memory(&["a_b1"], &banks[1]).unwrap();
        sim.run(1_000_000).unwrap();
        let out = join_banks(
            &decl,
            &[
                sim.memory(&["b_b0"]).unwrap(),
                sim.memory(&["b_b1"]).unwrap(),
            ],
        );
        assert_eq!(out, (1..=8).collect::<Vec<u64>>());
    }

    #[test]
    fn while_with_memory_condition() {
        let src = "
            decl out: ubit<32>[1];
            let i: ubit<32> = 0;
            ---
            while (i < 5) {
              i := i + 1;
            }
            ---
            out[0] := i;
        ";
        let sim = run(src, &[]);
        assert_eq!(sim.memory(&["out"]).unwrap(), vec![5]);
    }

    #[test]
    fn groups_carry_static_annotations() {
        let ctx = compile("let x: ubit<32> = 0; --- let y: ubit<32> = x * 2;").unwrap();
        let main = ctx.component("main").unwrap();
        let static_counts: Vec<u64> = main
            .groups
            .iter()
            .filter_map(|g| g.static_latency())
            .collect();
        assert!(static_counts.contains(&1), "register write is static 1");
        assert!(static_counts.contains(&5), "multiply chain is static 5");
    }

    #[test]
    fn bank_split_and_join_roundtrip() {
        let decl = MemDecl {
            name: Id::new("a"),
            width: 32,
            dims: vec![(4, 2), (3, 1)],
        };
        let data: Vec<u64> = (0..12).collect();
        let banks = split_banks(&decl, &data);
        assert_eq!(banks[0], vec![0, 1, 2, 6, 7, 8]); // rows 0 and 2
        assert_eq!(banks[1], vec![3, 4, 5, 9, 10, 11]); // rows 1 and 3
        assert_eq!(join_banks(&decl, &banks), data);
    }
}
