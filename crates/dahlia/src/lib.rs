//! A compiler for Dahlia, the imperative accelerator language of paper
//! §6.2, targeting Calyx.
//!
//! Dahlia (Nigam et al., PLDI 2020) is a C-like language whose
//! substructural type system rules out programs that map to bad hardware.
//! This crate reimplements the *Calyx backend* case study: parse Dahlia,
//! check it, lower the conveniences away, and emit Calyx with latency
//! annotations.
//!
//! Pipeline:
//!
//! 1. [`parse`]: text → AST. The dialect covers the paper's "lowered
//!    Dahlia" plus the conveniences it says are compiled away: memories
//!    with banking, `for` loops with `unroll`, `while`, `if`, ordered
//!    (`---`) and unordered (`;`) composition, and a `sqrt` builtin (the
//!    black-box RTL example).
//! 2. [`check`](check::check): scope/width checking plus the affine-flavored
//!    restrictions that make hardware mapping predictable (single memory
//!    write per unordered block, unroll factors matching banking).
//! 3. [`lower`](lower::lower): unroll loops into parallel lanes with
//!    resolved memory banks, convert `for` to `while`, and split statements
//!    so each reads every memory at most once and performs at most one
//!    sequential unit chain (three-address form).
//! 4. [`emit`](backend::emit): lowered AST → Calyx, one group per simple
//!    statement (annotated `"static"` where the latency is fixed; `sqrt`
//!    groups are left dynamic), with the one-to-one control mapping of the
//!    paper: `;` → `par`, `---` → `seq`, loops and conditionals → `while`
//!    and `if`.

pub mod ast;
pub mod backend;
pub mod check;
pub mod lower;
pub mod parser;

pub use ast::{BinOp, Block, Expr, MemDecl, Program, Stmt};
pub use parser::parse;

use calyx_core::errors::CalyxResult;
use calyx_core::ir::Context;

/// Convenience entry point: parse, check, lower, and emit in one call.
///
/// # Errors
///
/// Propagates parse, check, and lowering errors.
pub fn compile(src: &str) -> CalyxResult<Context> {
    let program = parse(src)?;
    check::check(&program)?;
    let lowered = lower::lower(program)?;
    backend::emit(&lowered)
}

/// Like [`compile`] but returns the lowered AST alongside the Calyx
/// program; the HLS model consumes the lowered AST.
///
/// # Errors
///
/// Propagates parse, check, and lowering errors.
pub fn compile_with_ast(src: &str) -> CalyxResult<(Program, Context)> {
    let program = parse(src)?;
    check::check(&program)?;
    let lowered = lower::lower(program)?;
    let ctx = backend::emit(&lowered)?;
    Ok((lowered, ctx))
}
