//! The Dahlia abstract syntax tree.
//!
//! The same types represent both the surface program and the *lowered*
//! program (paper §6.2's "lowered Dahlia"): lowering removes `For` and
//! resolves banked memory accesses, leaving the constructs with one-to-one
//! Calyx mappings.

use calyx_core::ir::Id;

/// A memory declaration: `decl a: ubit<32>[8 bank 2][8];`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemDecl {
    /// Memory name.
    pub name: Id,
    /// Element width in bits.
    pub width: u32,
    /// Per-dimension `(size, banking factor)`. Banking factor 1 means
    /// unbanked; factor B splits the dimension cyclically over B banks.
    pub dims: Vec<(u64, u64)>,
}

impl MemDecl {
    /// Total element count.
    pub fn size(&self) -> u64 {
        self.dims.iter().map(|(s, _)| s).product()
    }

    /// The product of all banking factors (number of physical memories).
    pub fn bank_count(&self) -> u64 {
        self.dims.iter().map(|(_, b)| b).product()
    }

    /// True when any dimension is banked.
    pub fn is_banked(&self) -> bool {
        self.dims.iter().any(|(_, b)| *b > 1)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (combinational)
    Add,
    /// `-` (combinational)
    Sub,
    /// `*` (4-cycle pipelined unit)
    Mul,
    /// `/` (4-cycle pipelined unit)
    Div,
    /// `%` (shares the divider)
    Rem,
    /// `&` bitwise
    And,
    /// `|` bitwise
    Or,
    /// `^` bitwise
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `==`
    Eq,
    /// `!=`
    Neq,
    /// `>=`
    Ge,
    /// `<=`
    Le,
}

impl BinOp {
    /// Does this operator produce a 1-bit result?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Eq | BinOp::Neq | BinOp::Ge | BinOp::Le
        )
    }

    /// Does this operator require a multi-cycle unit?
    pub fn is_sequential(self) -> bool {
        matches!(self, BinOp::Mul | BinOp::Div | BinOp::Rem)
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal (width adapts to context).
    Num(u64),
    /// Variable read.
    Var(Id),
    /// Memory read: `a[i][j]`. `bank` is `None` in surface programs and
    /// resolved by lowering for banked memories.
    ReadMem {
        /// The memory.
        mem: Id,
        /// Physical bank, resolved during lowering.
        bank: Option<u64>,
        /// One index expression per (logical) dimension.
        indices: Vec<Expr>,
    },
    /// Binary operation.
    Binop {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Integer square root builtin (black-box RTL in the paper).
    Sqrt(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for binary operations.
    pub fn binop(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binop {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Visit every subexpression (self included), pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Num(_) | Expr::Var(_) => {}
            Expr::ReadMem { indices, .. } => {
                for i in indices {
                    i.walk(f);
                }
            }
            Expr::Binop { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Sqrt(e) => e.walk(f),
        }
    }

    /// Number of sequential-unit operations (mul/div/rem/sqrt) in the tree.
    pub fn sequential_ops(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |e| match e {
            Expr::Binop { op, .. } if op.is_sequential() => n += 1,
            Expr::Sqrt(_) => n += 1,
            _ => {}
        });
        n
    }
}

/// A block: ordered (`---`) composition of unordered (`;`) statement sets.
pub type Block = Vec<Stmt>;

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `let x: ubit<32> = e;` — declares and initializes a register.
    Let {
        /// Variable name.
        var: Id,
        /// Declared width.
        width: u32,
        /// Initial value.
        init: Expr,
    },
    /// `x := e;`
    AssignVar {
        /// Target variable.
        var: Id,
        /// Right-hand side.
        rhs: Expr,
    },
    /// `a[i][j] := e;`
    Store {
        /// Target memory.
        mem: Id,
        /// Physical bank, resolved during lowering.
        bank: Option<u64>,
        /// One index per logical dimension.
        indices: Vec<Expr>,
        /// Value to store.
        rhs: Expr,
    },
    /// `if (c) { … } else { … }`
    If {
        /// Condition (must be combinational).
        cond: Expr,
        /// Taken branch.
        then_: Block,
        /// Untaken branch (possibly empty).
        else_: Block,
    },
    /// `while (c) { … }`
    While {
        /// Condition (must be combinational).
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `for (let i: ubit<W> = lo..hi) unroll u { … }` — removed by lowering.
    For {
        /// Loop variable.
        var: Id,
        /// Loop variable width.
        width: u32,
        /// Inclusive start.
        lo: u64,
        /// Exclusive end.
        hi: u64,
        /// Unroll factor (1 = no unrolling).
        unroll: u64,
        /// Loop body.
        body: Block,
    },
    /// Ordered composition (`---` between blocks).
    Seq(Vec<Stmt>),
    /// Unordered composition (`;` between statements).
    Par(Vec<Stmt>),
}

/// A full Dahlia program: memory declarations plus a body.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Externally visible memories.
    pub decls: Vec<MemDecl>,
    /// The program body.
    pub body: Stmt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_decl_accounting() {
        let m = MemDecl {
            name: Id::new("a"),
            width: 32,
            dims: vec![(8, 2), (4, 1)],
        };
        assert_eq!(m.size(), 32);
        assert_eq!(m.bank_count(), 2);
        assert!(m.is_banked());
    }

    #[test]
    fn sequential_op_counting() {
        let e = Expr::binop(
            BinOp::Add,
            Expr::binop(BinOp::Mul, Expr::Var(Id::new("a")), Expr::Var(Id::new("b"))),
            Expr::Sqrt(Box::new(Expr::Num(4))),
        );
        assert_eq!(e.sequential_ops(), 2);
        assert_eq!(Expr::Num(1).sequential_ops(), 0);
    }

    #[test]
    fn operator_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Mul.is_sequential());
        assert!(BinOp::Rem.is_sequential());
        assert!(!BinOp::Shl.is_sequential());
    }
}
