//! Lowering: from surface Dahlia to the restricted form the backend emits.
//!
//! Three transformations (the "first step of compilation" the paper elides
//! to its implementation, §6.2):
//!
//! 1. **Unrolling.** `for … unroll u` becomes a loop over `trips/u` base
//!    iterations whose body is the *unordered* composition of `u` lanes
//!    (Dahlia's unrolled iterations are parallel). Iteration `i` maps to
//!    lane `i mod u` at base index `i / u` — the cyclic banking layout —
//!    so an access `a[i]` on a dimension banked by `u` resolves statically
//!    to bank `lane` at address `base`. Uses of the loop variable that
//!    cannot be resolved this way are rejected, mirroring Dahlia's type
//!    errors. Lane-local `let`s are renamed apart.
//! 2. **Bank resolution** for constant indices on banked dimensions.
//! 3. **Three-address form.** Sequential units (`*`, `/`, `%`, `sqrt`) are
//!    hoisted into fresh temporaries so each statement contains at most one
//!    unit at its root, and duplicate reads of one memory within a
//!    statement are hoisted so every statement uses each memory port once.
//!
//! `for` loops survive lowering (with `unroll == 1`): the Calyx backend
//! converts them to `while`, and the HLS baseline model needs their static
//! trip counts.

use crate::ast::{Block, Expr, Program, Stmt};
use crate::check::{expr_width, Env};
use calyx_core::errors::{CalyxResult, Error};
use calyx_core::ir::Id;
use std::collections::HashMap;

/// Lower a checked program.
///
/// # Errors
///
/// Returns [`Error::Malformed`] for unrollings the banking structure cannot
/// support.
pub fn lower(p: Program) -> CalyxResult<Program> {
    let mut env = Env::from_program(&p);
    let mut fresh = 0usize;
    let body = unroll_stmt(p.body, &env)?;
    let body = split_stmt(body, &mut env, &mut fresh)?;
    Ok(Program {
        decls: p.decls,
        body,
    })
}

// ---------------------------------------------------------------------------
// Phase 1: unrolling + bank resolution
// ---------------------------------------------------------------------------

fn unroll_block(b: Block, env: &Env) -> CalyxResult<Block> {
    b.into_iter().map(|s| unroll_stmt(s, env)).collect()
}

fn unroll_stmt(s: Stmt, env: &Env) -> CalyxResult<Stmt> {
    Ok(match s {
        Stmt::Let { var, width, init } => Stmt::Let {
            var,
            width,
            init: resolve_const_banks(init, env)?,
        },
        Stmt::AssignVar { var, rhs } => Stmt::AssignVar {
            var,
            rhs: resolve_const_banks(rhs, env)?,
        },
        Stmt::Store {
            mem,
            bank,
            indices,
            rhs,
        } => {
            let rhs = resolve_const_banks(rhs, env)?;
            let indices = indices
                .into_iter()
                .map(|i| resolve_const_banks(i, env))
                .collect::<CalyxResult<Vec<_>>>()?;
            let (bank, indices) = match bank {
                Some(b) => (Some(b), indices),
                None => resolve_access(mem, indices, env, None)?,
            };
            Stmt::Store {
                mem,
                bank,
                indices,
                rhs,
            }
        }
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: resolve_const_banks(cond, env)?,
            then_: unroll_block(then_, env)?,
            else_: unroll_block(else_, env)?,
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: resolve_const_banks(cond, env)?,
            body: unroll_block(body, env)?,
        },
        Stmt::Seq(ss) => Stmt::Seq(unroll_block(ss, env)?),
        Stmt::Par(ss) => Stmt::Par(unroll_block(ss, env)?),
        Stmt::For {
            var,
            width,
            lo,
            hi,
            unroll,
            body,
        } => {
            if unroll <= 1 {
                return Ok(Stmt::For {
                    var,
                    width,
                    lo,
                    hi,
                    unroll: 1,
                    body: unroll_block(body, env)?,
                });
            }
            if lo != 0 {
                return Err(Error::malformed(format!(
                    "unrolled loop `{var}` must start at 0"
                )));
            }
            // Expand lanes on the *raw* body (its accesses through `var`
            // resolve to banks here), then recurse to handle nested loops
            // and remaining constant-index resolution inside the lanes.
            let trips = (hi - lo) / unroll;
            let lanes: Vec<Stmt> = (0..unroll)
                .map(|lane| {
                    let renames = lane_renames(&body, lane);
                    let lane_body = body
                        .iter()
                        .map(|s| lane_stmt(s.clone(), var, lane, unroll, &renames, env))
                        .collect::<CalyxResult<Vec<_>>>()?;
                    Ok(match lane_body.len() {
                        1 => lane_body.into_iter().next().expect("length checked"),
                        _ => Stmt::Seq(lane_body),
                    })
                })
                .collect::<CalyxResult<Vec<_>>>()?;
            unroll_stmt(
                Stmt::For {
                    var,
                    width,
                    lo: 0,
                    hi: trips,
                    unroll: 1,
                    body: vec![Stmt::Par(lanes)],
                },
                env,
            )?
        }
    })
}

/// Names `let`-bound inside an unrolled body, renamed per lane so parallel
/// lanes do not race on their temporaries.
fn lane_renames(body: &Block, lane: u64) -> HashMap<Id, Id> {
    let mut map = HashMap::new();
    fn collect(s: &Stmt, lane: u64, map: &mut HashMap<Id, Id>) {
        match s {
            Stmt::Let { var, .. } => {
                map.insert(*var, Id::new(format!("{var}__l{lane}")));
            }
            Stmt::If { then_, else_, .. } => {
                for s in then_.iter().chain(else_) {
                    collect(s, lane, map);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                for s in body {
                    collect(s, lane, map);
                }
            }
            Stmt::Seq(ss) | Stmt::Par(ss) => {
                for s in ss {
                    collect(s, lane, map);
                }
            }
            _ => {}
        }
    }
    for s in body {
        collect(s, lane, &mut map);
    }
    map
}

/// Rewrite one lane: rename local lets, resolve banked accesses through the
/// unrolled variable, and reject unresolvable uses of it.
fn lane_stmt(
    s: Stmt,
    var: Id,
    lane: u64,
    unroll: u64,
    renames: &HashMap<Id, Id>,
    env: &Env,
) -> CalyxResult<Stmt> {
    Ok(match s {
        Stmt::Let {
            var: v,
            width,
            init,
        } => Stmt::Let {
            var: renames.get(&v).copied().unwrap_or(v),
            width,
            init: lane_expr(init, var, lane, unroll, renames, env)?,
        },
        Stmt::AssignVar { var: v, rhs } => Stmt::AssignVar {
            var: renames.get(&v).copied().unwrap_or(v),
            rhs: lane_expr(rhs, var, lane, unroll, renames, env)?,
        },
        Stmt::Store {
            mem,
            bank,
            indices,
            rhs,
        } => {
            let rhs = lane_expr(rhs, var, lane, unroll, renames, env)?;
            // Indices may use the unrolled variable directly (it selects the
            // bank); everything else substitutes like any expression.
            let indices = indices
                .into_iter()
                .map(|i| {
                    if matches!(i, Expr::Var(v) if v == var) {
                        Ok(Expr::Var(var))
                    } else {
                        lane_expr(i, var, lane, unroll, renames, env)
                    }
                })
                .collect::<CalyxResult<Vec<_>>>()?;
            let (bank, indices) = match bank {
                Some(b) => (Some(b), indices),
                None => resolve_access(mem, indices, env, Some((var, lane, unroll)))?,
            };
            Stmt::Store {
                mem,
                bank,
                indices,
                rhs,
            }
        }
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: lane_expr(cond, var, lane, unroll, renames, env)?,
            then_: then_
                .into_iter()
                .map(|s| lane_stmt(s, var, lane, unroll, renames, env))
                .collect::<CalyxResult<Vec<_>>>()?,
            else_: else_
                .into_iter()
                .map(|s| lane_stmt(s, var, lane, unroll, renames, env))
                .collect::<CalyxResult<Vec<_>>>()?,
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: lane_expr(cond, var, lane, unroll, renames, env)?,
            body: body
                .into_iter()
                .map(|s| lane_stmt(s, var, lane, unroll, renames, env))
                .collect::<CalyxResult<Vec<_>>>()?,
        },
        Stmt::For {
            var: v,
            width,
            lo,
            hi,
            unroll: u,
            body,
        } => Stmt::For {
            var: v,
            width,
            lo,
            hi,
            unroll: u,
            body: body
                .into_iter()
                .map(|s| lane_stmt(s, var, lane, unroll, renames, env))
                .collect::<CalyxResult<Vec<_>>>()?,
        },
        Stmt::Seq(ss) => Stmt::Seq(
            ss.into_iter()
                .map(|s| lane_stmt(s, var, lane, unroll, renames, env))
                .collect::<CalyxResult<Vec<_>>>()?,
        ),
        Stmt::Par(ss) => Stmt::Par(
            ss.into_iter()
                .map(|s| lane_stmt(s, var, lane, unroll, renames, env))
                .collect::<CalyxResult<Vec<_>>>()?,
        ),
    })
}

fn lane_expr(
    e: Expr,
    var: Id,
    lane: u64,
    unroll: u64,
    renames: &HashMap<Id, Id>,
    env: &Env,
) -> CalyxResult<Expr> {
    Ok(match e {
        Expr::Num(n) => Expr::Num(n),
        Expr::Var(v) if v == var => {
            // A bare use of the unrolled variable outside a banked index
            // cannot be realized without lane arithmetic; Dahlia's type
            // system rejects these programs too.
            return Err(Error::malformed(format!(
                "unrolled loop variable `{var}` may only index memories banked by the unroll factor"
            )));
        }
        Expr::Var(v) => Expr::Var(renames.get(&v).copied().unwrap_or(v)),
        Expr::ReadMem { mem, bank, indices } => {
            // First substitute inner indices (they may use renamed lets).
            let indices = indices
                .into_iter()
                .map(|i| {
                    // The unrolled var *is* allowed as a direct index here.
                    if matches!(i, Expr::Var(v) if v == var) {
                        Ok(Expr::Var(var))
                    } else {
                        lane_expr(i, var, lane, unroll, renames, env)
                    }
                })
                .collect::<CalyxResult<Vec<_>>>()?;
            let (bank, indices) = match bank {
                Some(b) => (Some(b), indices),
                None => {
                    let uses_var = indices
                        .iter()
                        .any(|i| matches!(i, Expr::Var(v) if *v == var));
                    if uses_var {
                        resolve_access(mem, indices, env, Some((var, lane, unroll)))?
                    } else {
                        resolve_access(mem, indices, env, None)?
                    }
                }
            };
            Expr::ReadMem { mem, bank, indices }
        }
        Expr::Binop { op, lhs, rhs } => Expr::binop(
            op,
            lane_expr(*lhs, var, lane, unroll, renames, env)?,
            lane_expr(*rhs, var, lane, unroll, renames, env)?,
        ),
        Expr::Sqrt(inner) => Expr::Sqrt(Box::new(lane_expr(
            *inner, var, lane, unroll, renames, env,
        )?)),
    })
}

/// Resolve a memory access to a physical bank.
///
/// `lane_ctx = Some((var, lane, unroll))` when resolving inside an unrolled
/// lane: an index that *is* the unrolled variable on a dimension banked by
/// the unroll factor selects bank `lane` (cyclic layout: logical `n·u+lane`
/// is bank `lane`, offset `n`, and the base counter already runs over `n`).
/// Constant indices on banked dimensions resolve to `c mod B` / `c div B`.
fn resolve_access(
    mem: Id,
    mut indices: Vec<Expr>,
    env: &Env,
    lane_ctx: Option<(Id, u64, u64)>,
) -> CalyxResult<(Option<u64>, Vec<Expr>)> {
    let Some(decl) = env.mems.get(&mem) else {
        return Err(Error::malformed(format!("undeclared memory `{mem}`")));
    };
    if !decl.is_banked() {
        if let Some((var, _, _)) = lane_ctx {
            if indices
                .iter()
                .any(|i| matches!(i, Expr::Var(v) if *v == var))
            {
                return Err(Error::malformed(format!(
                    "memory `{mem}` is unbanked but indexed by unrolled variable `{var}`; \
                     bank it by the unroll factor or hoist the access"
                )));
            }
        }
        return Ok((None, indices));
    }
    let (dim, (_, banks)) = decl
        .dims
        .iter()
        .enumerate()
        .find(|(_, (_, b))| *b > 1)
        .map(|(d, sb)| (d, *sb))
        .expect("is_banked checked");
    match (&indices[dim], lane_ctx) {
        (Expr::Var(v), Some((var, lane, unroll))) if *v == var => {
            if banks != unroll {
                return Err(Error::malformed(format!(
                    "memory `{mem}` is banked by {banks} but the loop unrolls by {unroll}"
                )));
            }
            // Address within the bank is the base counter, i.e. the loop
            // variable itself after unrolling.
            Ok((Some(lane), indices))
        }
        (Expr::Num(c), _) => {
            let bank = c % banks;
            indices[dim] = Expr::Num(c / banks);
            Ok((Some(bank), indices))
        }
        _ => Err(Error::malformed(format!(
            "cannot statically resolve the bank of `{mem}`: banked dimensions \
             must be indexed by the unrolled loop variable or a constant"
        ))),
    }
}

/// Resolve constant-index banked accesses in sequential code.
fn resolve_const_banks(e: Expr, env: &Env) -> CalyxResult<Expr> {
    Ok(match e {
        Expr::Num(_) | Expr::Var(_) => e,
        Expr::ReadMem { mem, bank, indices } => {
            let indices = indices
                .into_iter()
                .map(|i| resolve_const_banks(i, env))
                .collect::<CalyxResult<Vec<_>>>()?;
            let (bank, indices) = match bank {
                Some(b) => (Some(b), indices),
                None => resolve_access(mem, indices, env, None)?,
            };
            Expr::ReadMem { mem, bank, indices }
        }
        Expr::Binop { op, lhs, rhs } => Expr::binop(
            op,
            resolve_const_banks(*lhs, env)?,
            resolve_const_banks(*rhs, env)?,
        ),
        Expr::Sqrt(inner) => Expr::Sqrt(Box::new(resolve_const_banks(*inner, env)?)),
    })
}

// ---------------------------------------------------------------------------
// Phase 2: three-address splitting
// ---------------------------------------------------------------------------

fn fresh_temp(fresh: &mut usize) -> Id {
    let id = Id::new(format!("__t{fresh}"));
    *fresh += 1;
    id
}

fn split_block(b: Block, env: &mut Env, fresh: &mut usize) -> CalyxResult<Block> {
    b.into_iter().map(|s| split_stmt(s, env, fresh)).collect()
}

fn split_stmt(s: Stmt, env: &mut Env, fresh: &mut usize) -> CalyxResult<Stmt> {
    Ok(match s {
        Stmt::Let { var, width, init } => {
            env.vars.insert(var, width);
            let mut pre = Vec::new();
            let init = simplify_rhs(init, width, env, fresh, &mut pre)?;
            finish(pre, Stmt::Let { var, width, init })
        }
        Stmt::AssignVar { var, rhs } => {
            let width = env.vars.get(&var).copied().unwrap_or(32);
            let mut pre = Vec::new();
            let rhs = simplify_rhs(rhs, width, env, fresh, &mut pre)?;
            finish(pre, Stmt::AssignVar { var, rhs })
        }
        Stmt::Store {
            mem,
            bank,
            indices,
            rhs,
        } => {
            let width = env.mems.get(&mem).map(|d| d.width).unwrap_or(32);
            let mut pre = Vec::new();
            let rhs = simplify_rhs(rhs, width, env, fresh, &mut pre)?;
            // Deduplicate memory reads against the store's own port use.
            let stmt = Stmt::Store {
                mem,
                bank,
                indices,
                rhs,
            };
            let stmt = dedup_reads(stmt, env, fresh, &mut pre)?;
            finish(pre, stmt)
        }
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond,
            then_: split_block(then_, env, fresh)?,
            else_: split_block(else_, env, fresh)?,
        },
        Stmt::While { cond, body } => Stmt::While {
            cond,
            body: split_block(body, env, fresh)?,
        },
        Stmt::For {
            var,
            width,
            lo,
            hi,
            unroll,
            body,
        } => {
            env.vars.insert(var, width);
            Stmt::For {
                var,
                width,
                lo,
                hi,
                unroll,
                body: split_block(body, env, fresh)?,
            }
        }
        Stmt::Seq(ss) => Stmt::Seq(split_block(ss, env, fresh)?),
        Stmt::Par(ss) => Stmt::Par(split_block(ss, env, fresh)?),
    })
}

fn finish(pre: Vec<Stmt>, last: Stmt) -> Stmt {
    if pre.is_empty() {
        last
    } else {
        let mut ss = pre;
        ss.push(last);
        Stmt::Seq(ss)
    }
}

/// Hoist nested sequential units, then duplicate memory reads, so the RHS
/// is a single comb tree with at most one unit at its root.
fn simplify_rhs(
    e: Expr,
    width: u32,
    env: &mut Env,
    fresh: &mut usize,
    pre: &mut Vec<Stmt>,
) -> CalyxResult<Expr> {
    let e = hoist_units(e, true, width, env, fresh, pre)?;
    // Read deduplication happens on a synthetic Let so the same walker
    // handles all statement kinds.
    let probe = Stmt::Let {
        var: Id::new("__probe"),
        width,
        init: e,
    };
    let probe = dedup_reads(probe, env, fresh, pre)?;
    match probe {
        Stmt::Let { init, .. } => Ok(init),
        _ => unreachable!("dedup_reads preserves statement shape"),
    }
}

/// Hoist every non-root sequential unit into a fresh temporary.
fn hoist_units(
    e: Expr,
    at_root: bool,
    width: u32,
    env: &mut Env,
    fresh: &mut usize,
    pre: &mut Vec<Stmt>,
) -> CalyxResult<Expr> {
    Ok(match e {
        Expr::Num(_) | Expr::Var(_) => e,
        Expr::ReadMem { mem, bank, indices } => {
            let indices = indices
                .into_iter()
                .map(|i| {
                    let i = hoist_units(i, false, 32, env, fresh, pre)?;
                    if i.sequential_ops() > 0 {
                        Err(Error::malformed(
                            "memory indices must be combinational expressions",
                        ))
                    } else {
                        Ok(i)
                    }
                })
                .collect::<CalyxResult<Vec<_>>>()?;
            Expr::ReadMem { mem, bank, indices }
        }
        Expr::Binop { op, lhs, rhs } => {
            let lhs = hoist_units(*lhs, false, width, env, fresh, pre)?;
            let rhs = hoist_units(*rhs, false, width, env, fresh, pre)?;
            let node = Expr::binop(op, lhs, rhs);
            if op.is_sequential() && !at_root {
                hoist(node, width, env, fresh, pre)?
            } else if op.is_sequential() && node.sequential_ops() > 1 {
                // Root unit whose (already hoisted) operands somehow still
                // contain units cannot happen; guard anyway.
                hoist(node, width, env, fresh, pre)?
            } else {
                node
            }
        }
        Expr::Sqrt(inner) => {
            let inner = hoist_units(*inner, false, width, env, fresh, pre)?;
            let node = Expr::Sqrt(Box::new(inner));
            if at_root {
                node
            } else {
                hoist(node, width, env, fresh, pre)?
            }
        }
    })
}

fn hoist(
    e: Expr,
    default_width: u32,
    env: &mut Env,
    fresh: &mut usize,
    pre: &mut Vec<Stmt>,
) -> CalyxResult<Expr> {
    let width = expr_width(&e, env)?.unwrap_or(default_width);
    let t = fresh_temp(fresh);
    env.vars.insert(t, width);
    pre.push(Stmt::Let {
        var: t,
        width,
        init: e,
    });
    Ok(Expr::Var(t))
}

/// Within one simple statement, each physical memory may be addressed once.
/// The first access (a store's own access wins) keeps the port; further
/// accesses with different indices are hoisted into preceding temporaries.
fn dedup_reads(
    stmt: Stmt,
    env: &mut Env,
    fresh: &mut usize,
    pre: &mut Vec<Stmt>,
) -> CalyxResult<Stmt> {
    type Key = (Id, Option<u64>);
    let mut claimed: HashMap<Key, Vec<Expr>> = HashMap::new();

    fn walk(
        e: Expr,
        claimed: &mut HashMap<(Id, Option<u64>), Vec<Expr>>,
        env: &mut Env,
        fresh: &mut usize,
        pre: &mut Vec<Stmt>,
    ) -> CalyxResult<Expr> {
        Ok(match e {
            Expr::Num(_) | Expr::Var(_) => e,
            Expr::ReadMem { mem, bank, indices } => {
                let indices = indices
                    .into_iter()
                    .map(|i| walk(i, claimed, env, fresh, pre))
                    .collect::<CalyxResult<Vec<_>>>()?;
                match claimed.get(&(mem, bank)) {
                    Some(prev) if *prev == indices => Expr::ReadMem { mem, bank, indices },
                    Some(_) => {
                        // Port already used at a different address: hoist.
                        let width = env.mems.get(&mem).map(|d| d.width).unwrap_or(32);
                        let t = fresh_temp(fresh);
                        env.vars.insert(t, width);
                        pre.push(Stmt::Let {
                            var: t,
                            width,
                            init: Expr::ReadMem { mem, bank, indices },
                        });
                        Expr::Var(t)
                    }
                    None => {
                        claimed.insert((mem, bank), indices.clone());
                        Expr::ReadMem { mem, bank, indices }
                    }
                }
            }
            Expr::Binop { op, lhs, rhs } => Expr::binop(
                op,
                walk(*lhs, claimed, env, fresh, pre)?,
                walk(*rhs, claimed, env, fresh, pre)?,
            ),
            Expr::Sqrt(inner) => Expr::Sqrt(Box::new(walk(*inner, claimed, env, fresh, pre)?)),
        })
    }

    Ok(match stmt {
        Stmt::Let { var, width, init } => Stmt::Let {
            var,
            width,
            init: walk(init, &mut claimed, env, fresh, pre)?,
        },
        Stmt::AssignVar { var, rhs } => Stmt::AssignVar {
            var,
            rhs: walk(rhs, &mut claimed, env, fresh, pre)?,
        },
        Stmt::Store {
            mem,
            bank,
            indices,
            rhs,
        } => {
            // The store's own access claims the port first.
            let indices = indices
                .into_iter()
                .map(|i| walk(i, &mut claimed, env, fresh, pre))
                .collect::<CalyxResult<Vec<_>>>()?;
            claimed.insert((mem, bank), indices.clone());
            Stmt::Store {
                mem,
                bank,
                indices,
                rhs: walk(rhs, &mut claimed, env, fresh, pre)?,
            }
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;
    use crate::parser::parse;

    fn lower_src(src: &str) -> Program {
        let p = parse(src).unwrap();
        check::check(&p).unwrap();
        lower(p).unwrap()
    }

    fn count_stmts(s: &Stmt, pred: &impl Fn(&Stmt) -> bool) -> usize {
        let mut n = usize::from(pred(s));
        match s {
            Stmt::If { then_, else_, .. } => {
                n += then_
                    .iter()
                    .chain(else_)
                    .map(|s| count_stmts(s, pred))
                    .sum::<usize>();
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                n += body.iter().map(|s| count_stmts(s, pred)).sum::<usize>();
            }
            Stmt::Seq(ss) | Stmt::Par(ss) => {
                n += ss.iter().map(|s| count_stmts(s, pred)).sum::<usize>();
            }
            _ => {}
        }
        n
    }

    #[test]
    fn unroll_creates_parallel_lanes_with_banks() {
        let p = lower_src(
            "decl a: ubit<32>[8 bank 2];
             for (let i: ubit<4> = 0..8) unroll 2 {
               a[i] := 1;
             }",
        );
        // The loop now runs 4 base iterations with a par of 2 lanes.
        match &p.body {
            Stmt::For {
                hi, unroll, body, ..
            } => {
                assert_eq!(*hi, 4);
                assert_eq!(*unroll, 1);
                match &body[0] {
                    Stmt::Par(lanes) => {
                        assert_eq!(lanes.len(), 2);
                        let banks: Vec<Option<u64>> = lanes
                            .iter()
                            .map(|l| match l {
                                Stmt::Store { bank, .. } => *bank,
                                other => panic!("expected store, got {other:?}"),
                            })
                            .collect();
                        assert_eq!(banks, vec![Some(0), Some(1)]);
                    }
                    other => panic!("expected par of lanes, got {other:?}"),
                }
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn lane_lets_are_renamed_apart() {
        let p = lower_src(
            "decl a: ubit<32>[4 bank 2];
             decl b: ubit<32>[4 bank 2];
             for (let i: ubit<4> = 0..4) unroll 2 {
               let t: ubit<32> = a[i];
               ---
               b[i] := t;
             }",
        );
        let lets = count_stmts(
            &p.body,
            &|s| matches!(s, Stmt::Let { var, .. } if var.as_str().contains("__l")),
        );
        assert_eq!(lets, 2, "one renamed let per lane: {p:?}");
    }

    #[test]
    fn constant_indices_resolve_banks() {
        let p = lower_src(
            "decl a: ubit<32>[8 bank 4];
             a[6] := 1;",
        );
        match &p.body {
            Stmt::Store { bank, indices, .. } => {
                assert_eq!(*bank, Some(2)); // 6 mod 4
                assert_eq!(indices[0], Expr::Num(1)); // 6 div 4
            }
            other => panic!("expected store, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unbanked_unrolled_access() {
        let p = parse(
            "decl a: ubit<32>[8];
             for (let i: ubit<4> = 0..8) unroll 2 { a[i] := 1; }",
        )
        .unwrap();
        check::check(&p).unwrap();
        let err = lower(p).unwrap_err();
        assert!(err.to_string().contains("unbanked"), "{err}");
    }

    #[test]
    fn nested_multiplies_are_hoisted() {
        let p = lower_src(
            "let a: ubit<32> = 2;
             ---
             let b: ubit<32> = 3;
             ---
             let c: ubit<32> = a * b + a * a;",
        );
        // Two multiplies, at most one can stay at the root: at least one
        // temporary is introduced.
        let temps = count_stmts(
            &p.body,
            &|s| matches!(s, Stmt::Let { var, .. } if var.as_str().starts_with("__t")),
        );
        assert!(temps >= 1, "{p:?}");
        // No statement has more than one sequential op afterwards.
        fn max_seq(s: &Stmt) -> usize {
            match s {
                Stmt::Let { init, .. } => init.sequential_ops(),
                Stmt::AssignVar { rhs, .. } => rhs.sequential_ops(),
                Stmt::Store { rhs, .. } => rhs.sequential_ops(),
                Stmt::If { then_, else_, .. } => {
                    then_.iter().chain(else_).map(max_seq).max().unwrap_or(0)
                }
                Stmt::While { body, .. } | Stmt::For { body, .. } => {
                    body.iter().map(max_seq).max().unwrap_or(0)
                }
                Stmt::Seq(ss) | Stmt::Par(ss) => ss.iter().map(max_seq).max().unwrap_or(0),
            }
        }
        assert!(max_seq(&p.body) <= 1);
    }

    #[test]
    fn duplicate_memory_reads_are_hoisted() {
        let p = lower_src(
            "decl a: ubit<32>[8];
             let x: ubit<32> = a[0] + a[1];",
        );
        let temps = count_stmts(
            &p.body,
            &|s| matches!(s, Stmt::Let { var, .. } if var.as_str().starts_with("__t")),
        );
        assert_eq!(temps, 1, "{p:?}");
    }

    #[test]
    fn same_address_read_in_store_is_kept() {
        // `a[i] := a[i] + 1` reads and writes the same address: one port use.
        let p = lower_src(
            "decl a: ubit<32>[8];
             let i: ubit<32> = 3;
             ---
             a[i] := a[i] + 1;",
        );
        let temps = count_stmts(
            &p.body,
            &|s| matches!(s, Stmt::Let { var, .. } if var.as_str().starts_with("__t")),
        );
        assert_eq!(temps, 0, "{p:?}");
    }

    #[test]
    fn store_reading_other_address_hoists() {
        let p = lower_src(
            "decl a: ubit<32>[8];
             a[0] := a[1] + 1;",
        );
        let temps = count_stmts(
            &p.body,
            &|s| matches!(s, Stmt::Let { var, .. } if var.as_str().starts_with("__t")),
        );
        assert_eq!(temps, 1, "{p:?}");
    }
}
