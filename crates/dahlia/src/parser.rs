//! Parser for the Dahlia dialect.
//!
//! Grammar sketch (whitespace-insensitive, `//` comments):
//!
//! ```text
//! program  ::= decl* block
//! decl     ::= "decl" IDENT ":" "ubit" "<" NUM ">" dim+ ";"
//! dim      ::= "[" NUM ("bank" NUM)? "]"
//! block    ::= chunk ("---" chunk)*            // ordered composition
//! chunk    ::= stmt*                           // unordered composition
//! stmt     ::= "let" IDENT ":" "ubit" "<" NUM ">" "=" expr ";"
//!            | IDENT ":=" expr ";"
//!            | IDENT ("[" expr "]")+ ":=" expr ";"
//!            | "if" "(" expr ")" "{" block "}" ("else" "{" block "}")?
//!            | "while" "(" expr ")" "{" block "}"
//!            | "for" "(" "let" IDENT ":" "ubit" "<" NUM ">" "=" NUM ".." NUM ")"
//!              ("unroll" NUM)? "{" block "}"
//! expr     ::= comparison over | ^ & << >> + - * / % sqrt() with C-like
//!              precedence
//! ```

use crate::ast::{BinOp, Block, Expr, MemDecl, Program, Stmt};
use calyx_core::errors::{CalyxResult, Error};
use calyx_core::ir::Id;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(u64),
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Colon,
    ColonEq,
    Eq,
    EqEq,
    Neq,
    Lt,
    Gt,
    Leq,
    Geq,
    Shl,
    Shr,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    DotDot,
    Dashes,
    Eof,
}

struct Lexer;

impl Lexer {
    fn lex(src: &str) -> CalyxResult<Vec<(Tok, usize)>> {
        let bytes = src.as_bytes();
        let mut toks = Vec::new();
        let mut i = 0;
        let mut line = 1;
        while i < bytes.len() {
            let c = bytes[i] as char;
            let two = |off: usize, ch: u8| bytes.get(i + off) == Some(&ch);
            match c {
                '\n' => {
                    line += 1;
                    i += 1;
                }
                ' ' | '\t' | '\r' => i += 1,
                '/' if two(1, b'/') => {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                }
                '-' if two(1, b'-') && two(2, b'-') => {
                    toks.push((Tok::Dashes, line));
                    i += 3;
                }
                '(' => {
                    toks.push((Tok::LParen, line));
                    i += 1;
                }
                ')' => {
                    toks.push((Tok::RParen, line));
                    i += 1;
                }
                '{' => {
                    toks.push((Tok::LBrace, line));
                    i += 1;
                }
                '}' => {
                    toks.push((Tok::RBrace, line));
                    i += 1;
                }
                '[' => {
                    toks.push((Tok::LBracket, line));
                    i += 1;
                }
                ']' => {
                    toks.push((Tok::RBracket, line));
                    i += 1;
                }
                ';' => {
                    toks.push((Tok::Semi, line));
                    i += 1;
                }
                ':' if two(1, b'=') => {
                    toks.push((Tok::ColonEq, line));
                    i += 2;
                }
                ':' => {
                    toks.push((Tok::Colon, line));
                    i += 1;
                }
                '=' if two(1, b'=') => {
                    toks.push((Tok::EqEq, line));
                    i += 2;
                }
                '=' => {
                    toks.push((Tok::Eq, line));
                    i += 1;
                }
                '!' if two(1, b'=') => {
                    toks.push((Tok::Neq, line));
                    i += 2;
                }
                '<' if two(1, b'<') => {
                    toks.push((Tok::Shl, line));
                    i += 2;
                }
                '<' if two(1, b'=') => {
                    toks.push((Tok::Leq, line));
                    i += 2;
                }
                '<' => {
                    toks.push((Tok::Lt, line));
                    i += 1;
                }
                '>' if two(1, b'>') => {
                    toks.push((Tok::Shr, line));
                    i += 2;
                }
                '>' if two(1, b'=') => {
                    toks.push((Tok::Geq, line));
                    i += 2;
                }
                '>' => {
                    toks.push((Tok::Gt, line));
                    i += 1;
                }
                '+' => {
                    toks.push((Tok::Plus, line));
                    i += 1;
                }
                '-' => {
                    toks.push((Tok::Minus, line));
                    i += 1;
                }
                '*' => {
                    toks.push((Tok::Star, line));
                    i += 1;
                }
                '/' => {
                    toks.push((Tok::Slash, line));
                    i += 1;
                }
                '%' => {
                    toks.push((Tok::Percent, line));
                    i += 1;
                }
                '&' => {
                    toks.push((Tok::Amp, line));
                    i += 1;
                }
                '|' => {
                    toks.push((Tok::Pipe, line));
                    i += 1;
                }
                '^' => {
                    toks.push((Tok::Caret, line));
                    i += 1;
                }
                '.' if two(1, b'.') => {
                    toks.push((Tok::DotDot, line));
                    i += 2;
                }
                c if c.is_ascii_digit() => {
                    let start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let n: u64 = src[start..i].parse().map_err(|_| Error::Parse {
                        msg: format!("number `{}` out of range", &src[start..i]),
                        line,
                        col: 0,
                    })?;
                    toks.push((Tok::Num(n), line));
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    toks.push((Tok::Ident(src[start..i].to_string()), line));
                }
                other => {
                    return Err(Error::Parse {
                        msg: format!("unexpected character `{other}`"),
                        line,
                        col: 0,
                    })
                }
            }
        }
        toks.push((Tok::Eof, line));
        Ok(toks)
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl std::fmt::Display) -> Error {
        Error::Parse {
            msg: msg.to_string(),
            line: self.toks[self.pos].1,
            col: 0,
        }
    }

    fn expect(&mut self, t: Tok, what: &str) -> CalyxResult<()> {
        if *self.peek() == t {
            self.next();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn eat(&mut self, t: Tok) -> bool {
        if *self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn kw(&mut self, kw: &str) -> CalyxResult<()> {
        if self.at_kw(kw) {
            self.next();
            Ok(())
        } else {
            Err(self.err(format!("expected keyword `{kw}`")))
        }
    }

    fn ident(&mut self, what: &str) -> CalyxResult<Id> {
        match self.next() {
            Tok::Ident(s) => Ok(Id::new(s)),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn num(&mut self, what: &str) -> CalyxResult<u64> {
        match self.next() {
            Tok::Num(n) => Ok(n),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    /// `ubit < NUM >`
    fn width(&mut self) -> CalyxResult<u32> {
        self.kw("ubit")?;
        self.expect(Tok::Lt, "`<`")?;
        let w = self.num("width")? as u32;
        self.expect(Tok::Gt, "`>`")?;
        Ok(w)
    }

    fn decl(&mut self) -> CalyxResult<MemDecl> {
        self.kw("decl")?;
        let name = self.ident("memory name")?;
        self.expect(Tok::Colon, "`:`")?;
        let width = self.width()?;
        let mut dims = Vec::new();
        while self.eat(Tok::LBracket) {
            let size = self.num("dimension size")?;
            let banks = if self.at_kw("bank") {
                self.next();
                self.num("bank factor")?
            } else {
                1
            };
            self.expect(Tok::RBracket, "`]`")?;
            dims.push((size, banks));
        }
        self.expect(Tok::Semi, "`;`")?;
        if dims.is_empty() {
            return Err(self.err("memories need at least one dimension"));
        }
        Ok(MemDecl { name, width, dims })
    }

    /// Parse `chunk (--- chunk)*` until `}`/EOF; wrap per the composition
    /// semantics.
    fn block(&mut self) -> CalyxResult<Block> {
        let mut chunks: Vec<Stmt> = Vec::new();
        loop {
            let mut stmts = Vec::new();
            while !matches!(self.peek(), Tok::RBrace | Tok::Eof | Tok::Dashes) {
                stmts.push(self.stmt()?);
            }
            chunks.push(match stmts.len() {
                0 => Stmt::Par(Vec::new()),
                1 => stmts.pop().expect("length checked"),
                _ => Stmt::Par(stmts),
            });
            if !self.eat(Tok::Dashes) {
                break;
            }
        }
        Ok(chunks)
    }

    fn braced_block(&mut self) -> CalyxResult<Block> {
        self.expect(Tok::LBrace, "`{`")?;
        let b = self.block()?;
        self.expect(Tok::RBrace, "`}`")?;
        Ok(b)
    }

    fn stmt(&mut self) -> CalyxResult<Stmt> {
        if self.at_kw("let") {
            self.next();
            let var = self.ident("variable")?;
            self.expect(Tok::Colon, "`:`")?;
            let width = self.width()?;
            self.expect(Tok::Eq, "`=`")?;
            let init = self.expr()?;
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Stmt::Let { var, width, init });
        }
        if self.at_kw("if") {
            self.next();
            self.expect(Tok::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect(Tok::RParen, "`)`")?;
            let then_ = self.braced_block()?;
            let else_ = if self.at_kw("else") {
                self.next();
                self.braced_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { cond, then_, else_ });
        }
        if self.at_kw("while") {
            self.next();
            self.expect(Tok::LParen, "`(`")?;
            let cond = self.expr()?;
            self.expect(Tok::RParen, "`)`")?;
            let body = self.braced_block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.at_kw("for") {
            self.next();
            self.expect(Tok::LParen, "`(`")?;
            self.kw("let")?;
            let var = self.ident("loop variable")?;
            self.expect(Tok::Colon, "`:`")?;
            let width = self.width()?;
            self.expect(Tok::Eq, "`=`")?;
            let lo = self.num("range start")?;
            self.expect(Tok::DotDot, "`..`")?;
            let hi = self.num("range end")?;
            self.expect(Tok::RParen, "`)`")?;
            let unroll = if self.at_kw("unroll") {
                self.next();
                self.num("unroll factor")?
            } else {
                1
            };
            let body = self.braced_block()?;
            return Ok(Stmt::For {
                var,
                width,
                lo,
                hi,
                unroll,
                body,
            });
        }
        // Assignment: `x := e;` or `m[i]... := e;`
        let name = self.ident("statement")?;
        let mut indices = Vec::new();
        while self.eat(Tok::LBracket) {
            indices.push(self.expr()?);
            self.expect(Tok::RBracket, "`]`")?;
        }
        self.expect(Tok::ColonEq, "`:=`")?;
        let rhs = self.expr()?;
        self.expect(Tok::Semi, "`;`")?;
        if indices.is_empty() {
            Ok(Stmt::AssignVar { var: name, rhs })
        } else {
            Ok(Stmt::Store {
                mem: name,
                bank: None,
                indices,
                rhs,
            })
        }
    }

    // Precedence climbing: cmp < | < ^ < & < shifts < +- < */% < primary.
    fn expr(&mut self) -> CalyxResult<Expr> {
        let lhs = self.bitor()?;
        let op = match self.peek() {
            Tok::Lt => Some(BinOp::Lt),
            Tok::Gt => Some(BinOp::Gt),
            Tok::EqEq => Some(BinOp::Eq),
            Tok::Neq => Some(BinOp::Neq),
            Tok::Geq => Some(BinOp::Ge),
            Tok::Leq => Some(BinOp::Le),
            _ => None,
        };
        match op {
            Some(op) => {
                self.next();
                let rhs = self.bitor()?;
                Ok(Expr::binop(op, lhs, rhs))
            }
            None => Ok(lhs),
        }
    }

    fn bitor(&mut self) -> CalyxResult<Expr> {
        let mut lhs = self.bitxor()?;
        while self.eat(Tok::Pipe) {
            let rhs = self.bitxor()?;
            lhs = Expr::binop(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bitxor(&mut self) -> CalyxResult<Expr> {
        let mut lhs = self.bitand()?;
        while self.eat(Tok::Caret) {
            let rhs = self.bitand()?;
            lhs = Expr::binop(BinOp::Xor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bitand(&mut self) -> CalyxResult<Expr> {
        let mut lhs = self.shift()?;
        while self.eat(Tok::Amp) {
            let rhs = self.shift()?;
            lhs = Expr::binop(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn shift(&mut self) -> CalyxResult<Expr> {
        let mut lhs = self.addsub()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::Shr,
                _ => break,
            };
            self.next();
            let rhs = self.addsub()?;
            lhs = Expr::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn addsub(&mut self) -> CalyxResult<Expr> {
        let mut lhs = self.muldiv()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.muldiv()?;
            lhs = Expr::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn muldiv(&mut self) -> CalyxResult<Expr> {
        let mut lhs = self.primary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.next();
            let rhs = self.primary()?;
            lhs = Expr::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> CalyxResult<Expr> {
        match self.peek().clone() {
            Tok::Num(n) => {
                self.next();
                Ok(Expr::Num(n))
            }
            Tok::LParen => {
                self.next();
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(s) if s == "sqrt" => {
                self.next();
                self.expect(Tok::LParen, "`(`")?;
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(Expr::Sqrt(Box::new(e)))
            }
            Tok::Ident(_) => {
                let name = self.ident("expression")?;
                let mut indices = Vec::new();
                while self.eat(Tok::LBracket) {
                    indices.push(self.expr()?);
                    self.expect(Tok::RBracket, "`]`")?;
                }
                if indices.is_empty() {
                    Ok(Expr::Var(name))
                } else {
                    Ok(Expr::ReadMem {
                        mem: name,
                        bank: None,
                        indices,
                    })
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parse a Dahlia program.
///
/// # Errors
///
/// Returns [`Error::Parse`] with line information on malformed input.
pub fn parse(src: &str) -> CalyxResult<Program> {
    let toks = Lexer::lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut decls = Vec::new();
    while p.at_kw("decl") {
        decls.push(p.decl()?);
    }
    let block = p.block()?;
    if *p.peek() != Tok::Eof {
        return Err(p.err("trailing tokens after program body"));
    }
    let body = match block.len() {
        1 => block.into_iter().next().expect("length checked"),
        _ => Stmt::Seq(block),
    };
    Ok(Program { decls, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declarations() {
        let p = parse("decl a: ubit<32>[8 bank 2][4]; let x: ubit<32> = 0;").unwrap();
        assert_eq!(p.decls.len(), 1);
        assert_eq!(p.decls[0].width, 32);
        assert_eq!(p.decls[0].dims, vec![(8, 2), (4, 1)]);
    }

    #[test]
    fn composition_operators() {
        // `;` composes unordered; `---` composes ordered.
        let p = parse(
            "let x: ubit<8> = 0;
             let y: ubit<8> = 1;
             ---
             x := y;",
        )
        .unwrap();
        match p.body {
            Stmt::Seq(chunks) => {
                assert_eq!(chunks.len(), 2);
                assert!(matches!(chunks[0], Stmt::Par(_)));
                assert!(matches!(chunks[1], Stmt::AssignVar { .. }));
            }
            other => panic!("expected seq of chunks, got {other:?}"),
        }
    }

    #[test]
    fn parses_loops_and_conditionals() {
        let p = parse(
            "decl a: ubit<32>[8];
             for (let i: ubit<4> = 0..8) unroll 2 {
               if (a[i] > 3) { a[i] := 0; } else { a[i] := 1; }
             }
             ---
             while (a[0] < 10) { a[0] := a[0] + 1; }",
        )
        .unwrap();
        match p.body {
            Stmt::Seq(chunks) => {
                assert!(matches!(
                    chunks[0],
                    Stmt::For {
                        unroll: 2,
                        lo: 0,
                        hi: 8,
                        ..
                    }
                ));
                assert!(matches!(chunks[1], Stmt::While { .. }));
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let p = parse("let x: ubit<32> = 1 + 2 * 3;").unwrap();
        match p.body {
            Stmt::Let { init, .. } => match init {
                Expr::Binop {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(*rhs, Expr::Binop { op: BinOp::Mul, .. }));
                }
                other => panic!("expected add at root, got {other:?}"),
            },
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn parses_sqrt_and_memory_ops() {
        let p = parse(
            "decl m: ubit<32>[4][4];
             m[1][2] := sqrt(m[0][0]) + 1;",
        )
        .unwrap();
        match p.body {
            Stmt::Store { indices, rhs, .. } => {
                assert_eq!(indices.len(), 2);
                assert_eq!(rhs.sequential_ops(), 1);
            }
            other => panic!("expected store, got {other:?}"),
        }
    }

    #[test]
    fn reports_errors_with_lines() {
        let err = parse("let x: ubit<8> = ;").unwrap_err();
        assert!(matches!(err, Error::Parse { line: 1, .. }));
        let err = parse("decl a ubit<8>[4];").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }
}
