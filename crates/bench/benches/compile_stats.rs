//! Criterion bench for §7.4's compilation statistics: compiler throughput
//! on the largest designs (gemver and the 8×8 systolic array).

use calyx_bench::stats;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_stats");
    group.sample_size(10);
    group.bench_function("gemver_compile", |b| {
        b.iter(|| stats::gemver_stats(8).expect("gemver compiles"));
    });
    group.bench_function("systolic_8x8_compile", |b| {
        b.iter(|| stats::systolic_stats(8).expect("systolic compiles"));
    });
    group.finish();
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
