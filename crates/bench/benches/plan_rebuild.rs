//! Criterion bench for plan-based rebuilds: the full 19-kernel
//! PolyBench suite routed `polybench -> verilog` through `calyx_plan`,
//! cold versus warm.
//!
//! - **cold** — empty artifact cache: every step of every kernel runs
//!   (generator, lowering pipeline, verilog emission) and the cache is
//!   populated on the way out.
//! - **warm** — the no-change rebuild: the same sweep against the
//!   populated cache. Every step's input digest and fingerprint are
//!   unchanged, so every step is served from disk — the build executes
//!   zero compiles, which is the whole point of content addressing.
//!
//! The closing line reports the cold/warm wall-clock ratio. Run with
//! `cargo bench --bench plan_rebuild`.

use calyx_plan::{derive, execute, BuildOpts, ExecEnv, StepStatus};
use calyx_polybench::KERNELS;
use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::time::Instant;

fn cache_dir() -> PathBuf {
    std::env::temp_dir().join(format!("plan-rebuild-bench-{}", std::process::id()))
}

/// Build every kernel (the polybench frontend takes the kernel name as
/// its input text); returns how many steps actually ran.
fn sweep(
    graph: &calyx_plan::PlanGraph,
    route: &calyx_plan::Route,
    env: &ExecEnv,
    build: &BuildOpts,
) -> usize {
    let mut ran = 0;
    for def in KERNELS {
        let outcome =
            execute(graph, route, def.name, env, build).expect("kernel builds to verilog");
        assert!(outcome.output.contains("module main"));
        ran += outcome.ran();
    }
    ran
}

fn bench_plan_rebuild(c: &mut Criterion) {
    let graph = derive::standard();
    let env = ExecEnv::default();
    let route = graph
        .plan(
            graph
                .state_id("polybench")
                .expect("polybench state derived"),
            graph.state_id("verilog").expect("verilog state derived"),
        )
        .expect("polybench routes to verilog");
    let build = BuildOpts {
        cache_dir: cache_dir(),
        ..BuildOpts::default()
    };

    let mut group = c.benchmark_group("plan_rebuild");
    group.sample_size(10);
    group.bench_function("polybench19_to_verilog/cold", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&build.cache_dir);
            sweep(&graph, &route, &env, &build)
        });
    });
    // Prime once, then measure the no-change rebuild.
    let _ = std::fs::remove_dir_all(&build.cache_dir);
    sweep(&graph, &route, &env, &build);
    group.bench_function("polybench19_to_verilog/warm", |b| {
        b.iter(|| {
            let ran = sweep(&graph, &route, &env, &build);
            assert_eq!(ran, 0, "a warm rebuild must execute zero steps");
            ran
        });
    });
    group.finish();

    // Headline ratio, measured once outside criterion's sampling.
    let _ = std::fs::remove_dir_all(&build.cache_dir);
    let start = Instant::now();
    let cold_ran = sweep(&graph, &route, &env, &build);
    let cold = start.elapsed();
    let start = Instant::now();
    let warm_ran = sweep(&graph, &route, &env, &build);
    let warm = start.elapsed();
    assert_eq!((cold_ran, warm_ran), (route.steps.len() * KERNELS.len(), 0));
    println!(
        "plan rebuild: cold {cold:.3?} ({cold_ran} steps ran), warm {warm:.3?} (all cached), \
         speedup {:.1}x",
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-9)
    );
    let _ = std::fs::remove_dir_all(&build.cache_dir);

    // Keep StepStatus in the public API surface the bench exercises.
    assert_eq!(StepStatus::Cached.label(), "cached");
}

criterion_group!(benches, bench_plan_rebuild);
criterion_main!(benches);
