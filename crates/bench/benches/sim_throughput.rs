//! Criterion bench measuring simulation throughput (cycles/sec) of the
//! flat arena-indexed engines against the legacy tree-walking engines
//! they replaced.
//!
//! Workloads: a plain register counter plus three representative
//! PolyBench kernels (gemm, gemver, cholesky — dense loops, mixed
//! memory traffic, and div/sqrt pipelines respectively). Each engine
//! family runs both generations over identical inputs:
//!
//! - `interp-*`: the reference interpreter on the un-lowered control tree;
//! - `rtl-*`: the cycle-accurate simulator on the `lower`ed design.
//!
//! Besides the usual per-iteration timings, the bench prints one
//! `cycles/sec` line per engine × workload (min over a few runs), which
//! is the number quoted in README/CHANGES for the flatten speedup.

use calyx_core::ir::{parse_context, Context};
use calyx_core::passes;
use calyx_polybench::{compile_kernel, input_data, kernel, logical_of};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

/// A counter busy-looping long enough to measure the cycle loop rather
/// than engine construction.
const COUNTER: &str = r#"
    component main() -> () {
      cells {
        i = std_reg(16);
        add = std_add(16);
        lt = std_lt(16);
      }
      wires {
        group init { i.in = 16'd0; i.write_en = 1'd1; init[done] = i.done; }
        group cond { lt.left = i.out; lt.right = 16'd2000; cond[done] = 1'd1; }
        group incr {
          add.left = i.out; add.right = 16'd1;
          i.in = add.out; i.write_en = 1'd1; incr[done] = i.done;
        }
      }
      control { seq { init; while lt.out with cond { incr; } } }
    }
"#;

/// One benchmark subject: the same program in both shapes the two engine
/// families consume, plus its deterministic memory image.
struct Workload {
    name: &'static str,
    unlowered: Context,
    lowered: Context,
    image: Vec<(String, Vec<u64>)>,
}

fn workloads() -> Vec<Workload> {
    let mut out = Vec::new();

    let unlowered = parse_context(COUNTER).expect("counter parses");
    let mut lowered = parse_context(COUNTER).expect("counter parses");
    passes::lower_pipeline()
        .run(&mut lowered)
        .expect("counter lowers");
    out.push(Workload {
        name: "counter",
        unlowered,
        lowered,
        image: Vec::new(),
    });

    // n=8 (double the differential suite's n=4) gives each kernel enough
    // cycles that the per-cycle cost dominates engine setup.
    for name in ["gemm", "gemver", "cholesky"] {
        let def = kernel(name).expect("registered kernel");
        let (ast, unlowered) = compile_kernel(def, 8, 1).expect("kernel compiles");
        let (_, mut lowered) = compile_kernel(def, 8, 1).expect("kernel compiles");
        passes::lower_pipeline()
            .run(&mut lowered)
            .expect("kernel lowers");
        let mut image = Vec::new();
        for decl in &ast.decls {
            let lname = logical_of(decl.name.as_str());
            let data = input_data(def.name, &lname, decl.size() as usize);
            let banks = calyx_dahlia::backend::split_banks(decl, &data);
            for ((bank, _), bank_data) in
                calyx_dahlia::backend::memory_banks(decl).iter().zip(&banks)
            {
                image.push((bank.clone(), bank_data.clone()));
            }
        }
        out.push(Workload {
            name: def.name,
            unlowered,
            lowered,
            image,
        });
    }
    out
}

const BUDGET: u64 = 100_000_000;

fn run_flat_interp(w: &Workload) -> u64 {
    let mut interp =
        calyx_sim::interp::Interpreter::new(&w.unlowered, "main").expect("interp builds");
    for (name, data) in &w.image {
        interp.set_memory(name, data).expect("memory exists");
    }
    interp.run(BUDGET).expect("interp completes").cycles
}

fn run_legacy_interp(w: &Workload) -> u64 {
    let mut interp =
        calyx_sim::legacy::interp::Interpreter::new(&w.unlowered, "main").expect("interp builds");
    for (name, data) in &w.image {
        interp.set_memory(name, data).expect("memory exists");
    }
    interp.run(BUDGET).expect("interp completes").cycles
}

fn run_flat_rtl(w: &Workload) -> u64 {
    let mut sim = calyx_sim::rtl::Simulator::new(&w.lowered, "main").expect("sim builds");
    for (name, data) in &w.image {
        sim.set_memory(&[name], data).expect("memory exists");
    }
    sim.run(BUDGET).expect("sim completes").cycles
}

fn run_legacy_rtl(w: &Workload) -> u64 {
    let mut sim = calyx_sim::legacy::rtl::Simulator::new(&w.lowered, "main").expect("sim builds");
    for (name, data) in &w.image {
        sim.set_memory(&[name], data).expect("memory exists");
    }
    sim.run(BUDGET).expect("sim completes").cycles
}

/// Min-of-N wall time of `f`, plus the cycle count it simulates.
fn measure(f: impl Fn() -> u64) -> (u64, Duration) {
    let mut best = Duration::MAX;
    let mut cycles = 0;
    for _ in 0..3 {
        let start = Instant::now();
        cycles = criterion::black_box(f());
        best = best.min(start.elapsed());
    }
    (cycles, best)
}

fn rate_line(label: &str, w: &Workload, f: impl Fn() -> u64) {
    let (cycles, wall) = measure(f);
    let rate = cycles as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "rate  sim_throughput/{label}/{:<10} {cycles} cycles in {wall:?} = {:.0} cycles/sec",
        w.name, rate
    );
}

fn bench_sim_throughput(c: &mut Criterion) {
    let workloads = workloads();
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    for w in &workloads {
        group.bench_with_input(BenchmarkId::new("interp-flat", w.name), w, |b, w| {
            b.iter(|| run_flat_interp(w));
        });
        group.bench_with_input(BenchmarkId::new("interp-legacy", w.name), w, |b, w| {
            b.iter(|| run_legacy_interp(w));
        });
        group.bench_with_input(BenchmarkId::new("rtl-flat", w.name), w, |b, w| {
            b.iter(|| run_flat_rtl(w));
        });
        group.bench_with_input(BenchmarkId::new("rtl-legacy", w.name), w, |b, w| {
            b.iter(|| run_legacy_rtl(w));
        });
    }
    group.finish();

    // The headline numbers: one cycles/sec line per engine × workload.
    for w in &workloads {
        rate_line("interp-flat", w, || run_flat_interp(w));
        rate_line("interp-legacy", w, || run_legacy_interp(w));
        rate_line("rtl-flat", w, || run_flat_rtl(w));
        rate_line("rtl-legacy", w, || run_legacy_rtl(w));
    }
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);
