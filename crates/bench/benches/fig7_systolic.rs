//! Criterion bench regenerating Figure 7's data points: systolic-array
//! generation, lowering, and cycle-accurate simulation versus the HLS
//! model, per array size.

use calyx_bench::fig7;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_systolic");
    group.sample_size(10);
    for n in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("calyx_static", n), &n, |b, &n| {
            b.iter(|| fig7::run_systolic(n, true).expect("systolic runs"));
        });
        group.bench_with_input(BenchmarkId::new("calyx_dynamic", n), &n, |b, &n| {
            b.iter(|| fig7::run_systolic(n, false).expect("systolic runs"));
        });
        group.bench_with_input(BenchmarkId::new("hls_model", n), &n, |b, &n| {
            b.iter(|| fig7::run_hls_matmul(n).expect("model runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
