//! Throughput bench for the compilation service: the full PolyBench
//! suite (19 kernels, each compiled twice — a fresh pass and a warm
//! recompile, the shape of an edit-rebuild sweep) through the verilog
//! backend, three ways:
//!
//! 1. **single-shot** — one `futil` process per job, serially: the
//!    workflow `--batch` replaces. Pays process spawn + registry
//!    construction + a full generator run per job.
//! 2. **batch --jobs 1** — one process, one worker: isolates the warm
//!    registries and the parse cache (the recompile pass replays cached
//!    canonical text instead of re-running the generator).
//! 3. **batch --jobs N** — the default worker count: adds pipelining
//!    across jobs. On a single-CPU host this measures scheduling
//!    overhead, not speedup; the honest headline on such hosts is
//!    batch-vs-single-shot.
//!
//! Each configuration reports wall time, kernels/sec, and p50/p99 job
//! latency; the final lines give the kernels/sec speedups over the
//! single-shot baseline. Run with `cargo bench --bench batch_throughput`.

use calyx_polybench::KERNELS;
use calyx_service::{percentile, CompileService, JobDefaults, JobRequest, WorkerPool};
use std::process::Command;
use std::time::{Duration, Instant};

/// The sweep: every kernel twice — fresh, then a warm recompile.
fn sweep(kernels: &[&str], backend: &str) -> Vec<JobRequest> {
    let mut reqs = Vec::new();
    for _pass in 0..2 {
        for name in kernels {
            reqs.push(JobRequest {
                frontend: Some("polybench".to_string()),
                fopts: vec![("kernel".to_string(), name.to_string())],
                backend: Some(backend.to_string()),
                name: Some(name.to_string()),
                ..JobRequest::default()
            });
        }
    }
    reqs
}

struct Sample {
    wall: Duration,
    latencies: Vec<Duration>,
}

impl Sample {
    fn kernels_per_sec(&self) -> f64 {
        self.latencies.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn report(&self, label: &str) {
        let mut lat = self.latencies.clone();
        lat.sort();
        println!(
            "  {label:<22} {:>10.3?}  {:>7.1} kernels/sec  p50 {:.3?}  p99 {:.3?}",
            self.wall,
            self.kernels_per_sec(),
            percentile(&lat, 50),
            percentile(&lat, 99),
        );
    }
}

/// One `futil` process per job, serially — the pre-`--batch` workflow.
fn run_single_shot(reqs: &[JobRequest]) -> Sample {
    let start = Instant::now();
    let mut latencies = Vec::with_capacity(reqs.len());
    for req in reqs {
        let t = Instant::now();
        let out = Command::new(env!("CARGO_BIN_EXE_futil"))
            .args([
                "-",
                "-f",
                "polybench",
                "--fopt",
                &format!("kernel={}", req.name.as_deref().unwrap()),
                "-b",
                req.backend.as_deref().unwrap(),
            ])
            .output()
            .expect("futil spawns");
        assert!(
            out.status.success(),
            "single-shot {} failed: {}",
            req.name.as_deref().unwrap(),
            String::from_utf8_lossy(&out.stderr)
        );
        latencies.push(t.elapsed());
    }
    Sample {
        wall: start.elapsed(),
        latencies,
    }
}

/// One process, one shared service — `futil --batch` in-process.
fn run_batch(reqs: &[JobRequest], jobs: usize) -> Sample {
    // A fresh service per sample: every sample pays the same cache
    // misses on the first pass and earns the same hits on the second.
    let service = CompileService::new();
    let start = Instant::now();
    let summary = service.run_batch(reqs, jobs, false, &JobDefaults::default());
    let wall = start.elapsed();
    assert!(summary.all_ok(), "batch job failed");
    Sample {
        wall,
        latencies: summary.latencies(),
    }
}

fn best<F: FnMut() -> Sample>(samples: usize, mut f: F) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..samples {
        let s = f();
        if best.as_ref().is_none_or(|b| s.wall < b.wall) {
            best = Some(s);
        }
    }
    best.unwrap()
}

fn main() {
    // `cargo test` runs bench binaries with `--test`: shrink to a smoke
    // run that still exercises all three configurations.
    let test_mode = std::env::args().any(|a| a == "--test");
    let kernels: Vec<&str> = if test_mode {
        KERNELS.iter().take(2).map(|k| k.name).collect()
    } else {
        KERNELS.iter().map(|k| k.name).collect()
    };
    let samples = if test_mode { 1 } else { 3 };
    // At least 4 workers even on small hosts, so the multi-worker row
    // always measures a real pool (on one CPU: its scheduling overhead).
    let n = WorkerPool::default_jobs().max(4);

    for backend in ["verilog", "sim"] {
        let reqs = sweep(&kernels, backend);
        println!(
            "batch_throughput: {} kernels x 2 passes -> {backend} ({} jobs, best of {samples})",
            kernels.len(),
            reqs.len(),
        );
        let single = best(samples, || run_single_shot(&reqs));
        single.report("single-shot (1/proc)");
        let batch1 = best(samples, || run_batch(&reqs, 1));
        batch1.report("batch --jobs 1");
        let batch_n = best(samples, || run_batch(&reqs, n));
        batch_n.report(&format!("batch --jobs {n}"));

        println!(
            "  speedup vs single-shot: batch --jobs 1: {:.2}x, batch --jobs {n}: {:.2}x",
            batch1.kernels_per_sec() / single.kernels_per_sec(),
            batch_n.kernels_per_sec() / single.kernels_per_sec(),
        );
    }
}
