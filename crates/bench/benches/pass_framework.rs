//! Criterion bench for the pass framework's zero-clone traversal: full
//! `opt`-pipeline compile time on the largest PolyBench kernel (gemver, the
//! §7.4 compile-time outlier), with and without the old clone-per-pass
//! traversal cost.
//!
//! The "clone-per-pass" baseline emulates the pre-visitor traversal
//! exactly: `for_each_component` used to deep-clone every component once
//! per pass before editing it, so the wrapper pass performs that clone and
//! then runs the real (zero-clone) pass.

use calyx_core::errors::CalyxResult;
use calyx_core::ir::{Context, Id};
use calyx_core::passes::{Pass, PassManager, PassRegistry, ALIAS_OPT};
use calyx_polybench::{compile_kernel, kernel};
use criterion::{criterion_group, criterion_main, Criterion};

/// Wraps a pass with the old traversal's per-pass cost: one deep clone of
/// every component (the clone replaces the original in the context, so the
/// drop of the old copy is paid too, exactly as before).
struct ClonePerPass(Box<dyn Pass>);

impl Pass for ClonePerPass {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn description(&self) -> &'static str {
        self.0.description()
    }
    fn run(&mut self, ctx: &mut Context) -> CalyxResult<()> {
        let names: Vec<Id> = ctx.components.names().collect();
        for name in names {
            let comp = ctx
                .components
                .get(name)
                .expect("names come from the map")
                .clone();
            ctx.components.insert(comp);
        }
        self.0.run(ctx)
    }
}

fn clone_per_pass_manager() -> PassManager {
    let registry = PassRegistry::default();
    let mut pm = PassManager::new();
    for name in ALIAS_OPT {
        let entry = registry
            .passes()
            .iter()
            .find(|p| p.name == *name)
            .expect("opt alias names registered passes");
        pm.register(ClonePerPass((entry.construct)()));
    }
    pm
}

fn bench_pass_framework(c: &mut Criterion) {
    let def = kernel("gemver").expect("gemver is registered");
    let (_ast, ctx) = compile_kernel(def, 8, 1).expect("gemver compiles");

    let mut group = c.benchmark_group("pass_framework");
    group.sample_size(10);
    group.bench_function("gemver_opt/zero_clone", |b| {
        b.iter(|| {
            let mut ctx = ctx.clone();
            PassManager::from_names(&["opt"])
                .expect("opt alias exists")
                .run(&mut ctx)
                .expect("pipeline succeeds");
            ctx
        });
    });
    group.bench_function("gemver_opt/clone_per_pass", |b| {
        b.iter(|| {
            let mut ctx = ctx.clone();
            clone_per_pass_manager()
                .run(&mut ctx)
                .expect("pipeline succeeds");
            ctx
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pass_framework);
criterion_main!(benches);
