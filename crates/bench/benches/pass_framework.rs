//! Criterion bench for the pass framework on the largest PolyBench kernel
//! (gemver, the §7.4 compile-time outlier):
//!
//! - **zero_clone vs clone_per_pass** — the visitor traversal against the
//!   old deep-clone-per-pass traversal it replaced. The baseline emulates
//!   the pre-visitor behavior exactly: `for_each_component` used to
//!   deep-clone every component once per pass before editing it, so the
//!   wrapper pass performs that clone and then runs the real pass.
//! - **cached vs recompute_every_query** — the analysis cache against the
//!   uncached baseline: the same `opt` pipeline run with a shared
//!   [`AnalysisCache`] versus one where every analysis query recomputes
//!   (`AnalysisCache::recompute_every_query`).

use calyx_core::errors::CalyxResult;
use calyx_core::ir::{Context, Id};
use calyx_core::passes::{AnalysisCache, Pass, PassManager, PassRegistry, ALIAS_OPT};
use calyx_polybench::{compile_kernel, kernel};
use criterion::{criterion_group, criterion_main, Criterion};

/// Wraps a pass with the old traversal's per-pass cost: one deep clone of
/// every component (the clone replaces the original in the context, so the
/// drop of the old copy is paid too, exactly as before).
struct ClonePerPass(Box<dyn Pass>);

impl Pass for ClonePerPass {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn description(&self) -> &'static str {
        self.0.description()
    }
    fn run_with(&mut self, ctx: &mut Context, cache: &mut AnalysisCache) -> CalyxResult<()> {
        let names: Vec<Id> = ctx.components.names().collect();
        for name in names {
            let comp = ctx
                .components
                .get(name)
                .expect("names come from the map")
                .clone();
            ctx.components.insert(comp);
        }
        self.0.run_with(ctx, cache)
    }
}

fn clone_per_pass_manager() -> PassManager {
    let registry = PassRegistry::default();
    let mut pm = PassManager::new();
    for name in ALIAS_OPT {
        let entry = registry
            .passes()
            .iter()
            .find(|p| p.name == *name)
            .expect("opt alias names registered passes");
        pm.register(ClonePerPass((entry.construct)()));
    }
    pm
}

fn bench_pass_framework(c: &mut Criterion) {
    let def = kernel("gemver").expect("gemver is registered");
    let (_ast, ctx) = compile_kernel(def, 8, 1).expect("gemver compiles");

    let mut group = c.benchmark_group("pass_framework");
    group.sample_size(30);
    group.bench_function("gemver_opt/zero_clone", |b| {
        b.iter(|| {
            let mut ctx = ctx.clone();
            PassManager::from_names(&["opt"])
                .expect("opt alias exists")
                .run(&mut ctx)
                .expect("pipeline succeeds");
            ctx
        });
    });
    group.bench_function("gemver_opt/clone_per_pass", |b| {
        b.iter(|| {
            let mut ctx = ctx.clone();
            clone_per_pass_manager()
                .run(&mut ctx)
                .expect("pipeline succeeds");
            ctx
        });
    });
    // The analysis cache's win: the same pipeline with memoized queries
    // (`cached` — what `PassManager::run` does by default) against the
    // recompute-every-query baseline.
    group.bench_function("gemver_opt/cached", |b| {
        b.iter(|| {
            let mut ctx = ctx.clone();
            PassManager::from_names(&["opt"])
                .expect("opt alias exists")
                .run_with_cache(&mut ctx, &mut AnalysisCache::new())
                .expect("pipeline succeeds");
            ctx
        });
    });
    group.bench_function("gemver_opt/recompute_every_query", |b| {
        b.iter(|| {
            let mut ctx = ctx.clone();
            PassManager::from_names(&["opt"])
                .expect("opt alias exists")
                .run_with_cache(&mut ctx, &mut AnalysisCache::recompute_every_query())
                .expect("pipeline succeeds");
            ctx
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pass_framework);
criterion_main!(benches);
