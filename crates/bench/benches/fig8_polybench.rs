//! Criterion bench regenerating Figure 8's data points: verified
//! simulation of PolyBench kernels (Dahlia → Calyx) against the HLS model.

use calyx_bench::fig8;
use calyx_polybench::kernel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_polybench");
    group.sample_size(10);
    // A representative subset keeps the bench wall-clock manageable; the
    // `figures` binary covers the full suite.
    for name in ["gemm", "atax", "mvt", "trisolv"] {
        let def = kernel(name).expect("registered kernel");
        group.bench_with_input(BenchmarkId::new("plain", name), &def, |b, def| {
            b.iter(|| fig8::run_kernel(def, 4, 1).expect("kernel verifies"));
        });
        if def.unrollable {
            group.bench_with_input(BenchmarkId::new("unrolled", name), &def, |b, def| {
                b.iter(|| fig8::run_kernel(def, 4, 2).expect("kernel verifies"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
