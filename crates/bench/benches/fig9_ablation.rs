//! Criterion bench regenerating Figure 9's ablation points: the same
//! kernel lowered with each optimization configuration.

use calyx_bench::fig9;
use calyx_polybench::kernel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_ablation");
    group.sample_size(10);
    for name in ["gemm", "trisolv"] {
        let def = kernel(name).expect("registered kernel");
        group.bench_with_input(BenchmarkId::new("ablation", name), &def, |b, def| {
            b.iter(|| fig9::run_kernel(def, 4).expect("ablation runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
