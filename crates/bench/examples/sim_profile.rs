//! Profiling harness for the simulation engines: run ONE engine over ONE
//! PolyBench kernel many times, with nothing else in the process, so
//! sampling profilers (`gprofng collect app`, `perf record`) see only the
//! loop under study.
//!
//! ```sh
//! cargo run --release -p calyx_bench --example sim_profile -- rtl-flat gemver 8 50
//! ```

use calyx_core::passes;
use calyx_polybench::{compile_kernel, input_data, kernel, logical_of};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let engine = args.first().map(String::as_str).unwrap_or("rtl-flat");
    let kname = args.get(1).map(String::as_str).unwrap_or("gemver");
    let n: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let iters: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(20);

    let def = kernel(kname).expect("known kernel");
    let (ast, mut ctx) = compile_kernel(def, n, 1).expect("kernel compiles");
    if engine.starts_with("rtl") {
        passes::lower_pipeline().run(&mut ctx).expect("lowers");
    }
    let mut image = Vec::new();
    for decl in &ast.decls {
        let lname = logical_of(decl.name.as_str());
        let data = input_data(def.name, &lname, decl.size() as usize);
        let banks = calyx_dahlia::backend::split_banks(decl, &data);
        for ((bank, _), bank_data) in calyx_dahlia::backend::memory_banks(decl).iter().zip(&banks) {
            image.push((bank.clone(), bank_data.clone()));
        }
    }

    let start = std::time::Instant::now();
    let mut cycles = 0u64;
    for _ in 0..iters {
        cycles = match engine {
            "rtl-flat" => {
                let mut sim = calyx_sim::rtl::Simulator::new(&ctx, "main").expect("builds");
                for (name, data) in &image {
                    sim.set_memory(&[name], data).expect("memory");
                }
                sim.run(100_000_000).expect("completes").cycles
            }
            "rtl-legacy" => {
                let mut sim = calyx_sim::legacy::rtl::Simulator::new(&ctx, "main").expect("builds");
                for (name, data) in &image {
                    sim.set_memory(&[name], data).expect("memory");
                }
                sim.run(100_000_000).expect("completes").cycles
            }
            "interp-flat" => {
                let mut interp = calyx_sim::interp::Interpreter::new(&ctx, "main").expect("builds");
                for (name, data) in &image {
                    interp.set_memory(name, data).expect("memory");
                }
                interp.run(100_000_000).expect("completes").cycles
            }
            "interp-legacy" => {
                let mut interp =
                    calyx_sim::legacy::interp::Interpreter::new(&ctx, "main").expect("builds");
                for (name, data) in &image {
                    interp.set_memory(name, data).expect("memory");
                }
                interp.run(100_000_000).expect("completes").cycles
            }
            other => panic!("unknown engine `{other}`"),
        };
    }
    let wall = start.elapsed();
    let per = wall / iters;
    let rate = cycles as f64 / per.as_secs_f64().max(1e-9);
    println!("{engine}/{kname} n={n}: {cycles} cycles, {per:?}/run, {rate:.0} cycles/sec");
}
