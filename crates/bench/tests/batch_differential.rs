//! Determinism differential: `futil --batch` must emit **byte-identical**
//! output to single-shot `futil` for every PolyBench kernel — including
//! on the parse-cache hit path, where a batch job replays the cached
//! canonical text instead of re-running the generator.
//!
//! The suite drives the real binary both ways: once per kernel in
//! single-shot mode (`-o`), and once as one manifest batch with every
//! kernel listed twice (the second copy is guaranteed to hit the cache).

use calyx_polybench::KERNELS;
use calyx_service::json;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn futil(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_futil"))
        .args(args)
        .output()
        .expect("futil spawns")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("futil-batch-diff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("missing output {}: {e}", path.display()))
}

#[test]
fn batch_is_byte_identical_to_single_shot_for_all_polybench_kernels() {
    let dir = scratch("polybench");
    let single = dir.join("single");
    let fresh = dir.join("fresh");
    let cached = dir.join("cached");

    // Single-shot baseline: one process per kernel.
    for k in KERNELS {
        let out = single.join(format!("{}.sv", k.name));
        std::fs::create_dir_all(&single).unwrap();
        let run = futil(&[
            "-",
            "-f",
            "polybench",
            "--fopt",
            &format!("kernel={}", k.name),
            "-b",
            "verilog",
            "-o",
            out.to_str().unwrap(),
        ]);
        assert!(
            run.status.success(),
            "single-shot {} failed: {}",
            k.name,
            String::from_utf8_lossy(&run.stderr)
        );
    }

    // One batch, every kernel twice: the first copy misses the cache
    // (runs the generator), the second hits it (replays canonical text).
    let mut manifest = String::new();
    for k in KERNELS {
        for out_dir in [&fresh, &cached] {
            manifest.push_str(&format!(
                "{{\"frontend\": \"polybench\", \"fopts\": {{\"kernel\": \"{}\"}}, \
                 \"backend\": \"verilog\", \"name\": \"{}\", \"out\": \"{}/{}.sv\"}}\n",
                k.name,
                k.name,
                out_dir.display(),
                k.name
            ));
        }
    }
    let manifest_path = dir.join("jobs.jsonl");
    std::fs::write(&manifest_path, manifest).unwrap();
    let run = futil(&[
        "--batch",
        manifest_path.to_str().unwrap(),
        "--jobs",
        "4",
        "--format",
        "json",
    ]);
    assert!(
        run.status.success(),
        "batch failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );

    // The summary agrees: 38 jobs, all ok, and every job either hit or
    // missed the cache. With 4 workers the two copies of a kernel may
    // race and both miss (the cache is check-then-insert, not a lock
    // around the generator), so the split is `misses >= 19`, not exactly
    // 19/19 — the deterministic single-worker split is pinned by the
    // service crate's own unit tests.
    let summary = json::parse(&String::from_utf8_lossy(&run.stdout)).expect("summary parses");
    assert_eq!(summary.get("jobs").unwrap().as_u64(), Some(38));
    assert_eq!(summary.get("ok").unwrap().as_u64(), Some(38));
    let cache = summary.get("parse_cache").unwrap();
    let misses = cache.get("misses").unwrap().as_u64().unwrap();
    let hits = cache.get("hits").unwrap().as_u64().unwrap();
    assert!(misses >= 19, "each kernel runs its generator at least once");
    assert_eq!(hits + misses, 38, "every job consults the cache");

    // The payoff: three compilation paths, identical bytes.
    for k in KERNELS {
        let name = format!("{}.sv", k.name);
        let baseline = read(&single.join(&name));
        assert!(!baseline.is_empty(), "{} emitted nothing", k.name);
        assert_eq!(
            baseline,
            read(&fresh.join(&name)),
            "{}: batch (cache miss) diverged from single-shot futil",
            k.name
        );
        assert_eq!(
            baseline,
            read(&cached.join(&name)),
            "{}: batch (cache hit) diverged from single-shot futil",
            k.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same job list must produce the same summary whether it runs on
/// one worker or many — only the timings may differ.
#[test]
fn job_order_and_statuses_are_deterministic_across_worker_counts() {
    let dir = scratch("order");
    let mut manifest = String::new();
    for k in KERNELS.iter().take(5) {
        manifest.push_str(&format!(
            "{{\"frontend\": \"polybench\", \"fopts\": {{\"kernel\": \"{}\"}}, \
             \"name\": \"{}\"}}\n",
            k.name, k.name
        ));
    }
    // One failing job in the middle: status must be stable too.
    manifest.push_str("{\"source\": \"component main( {\", \"name\": \"broken\"}\n");
    let manifest_path = dir.join("jobs.jsonl");
    std::fs::write(&manifest_path, manifest).unwrap();

    let mut rows_by_jobs = Vec::new();
    for jobs in ["1", "8"] {
        let run = futil(&[
            "--batch",
            manifest_path.to_str().unwrap(),
            "--jobs",
            jobs,
            "--format",
            "json",
        ]);
        assert_eq!(run.status.code(), Some(1), "a failing job exits 1");
        let summary = json::parse(&String::from_utf8_lossy(&run.stdout)).unwrap();
        let rows: Vec<(u64, String, String)> = summary
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|r| {
                (
                    r.get("id").unwrap().as_u64().unwrap(),
                    r.get("name").unwrap().as_str().unwrap().to_string(),
                    r.get("status").unwrap().as_str().unwrap().to_string(),
                )
            })
            .collect();
        rows_by_jobs.push(rows);
    }
    assert_eq!(rows_by_jobs[0], rows_by_jobs[1]);
    assert_eq!(rows_by_jobs[0][5].2, "error");
    let _ = std::fs::remove_dir_all(&dir);
}
