//! The lints' false-positive guard: every program this repository ships
//! or generates must check clean of error-severity findings — all 19
//! PolyBench kernels and every `examples/*.futil` outside the
//! deliberately-broken `examples/bad/` corpus.

use calyx_core::analysis::AnalysisCache;
use calyx_core::lint::LintRegistry;
use calyx_polybench::{compile_kernel, KERNELS};
use std::path::PathBuf;
use std::process::Command;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

/// All 19 paper kernels, straight out of the Dahlia frontend, carry no
/// error-severity findings. (Generated IR has no source positions, so
/// this also exercises the position-free rendering path.)
#[test]
fn polybench_kernels_check_clean() {
    let registry = LintRegistry::default();
    assert_eq!(KERNELS.len(), 19);
    for def in KERNELS {
        let (_, ctx) = compile_kernel(def, 4, 1)
            .unwrap_or_else(|e| panic!("kernel `{}` fails to compile: {e}", def.name));
        let sink = registry.check_all(&ctx, &mut AnalysisCache::new());
        assert_eq!(
            sink.errors(),
            0,
            "kernel `{}` has lint errors:\n{}",
            def.name,
            sink.render_text(def.name, "")
        );
    }
}

/// Every shipped example program (minus the bad corpus) passes
/// `futil check` — exit 0 means zero error-severity findings.
#[test]
fn shipped_examples_check_clean() {
    let root = repo_root();
    let mut checked = 0;
    for entry in std::fs::read_dir(root.join("examples")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("futil") {
            continue;
        }
        let out = Command::new(env!("CARGO_BIN_EXE_futil"))
            .arg("check")
            .arg(&path)
            .current_dir(&root)
            .output()
            .expect("futil spawns");
        assert_eq!(
            out.status.code(),
            Some(0),
            "{} has lint errors:\n{}",
            path.display(),
            String::from_utf8_lossy(&out.stdout)
        );
        checked += 1;
    }
    assert!(checked > 0, "no examples/*.futil found");
}
