//! Concurrency stress for the compilation service: random mixes of good
//! and poisoned jobs on an 8-worker pool must produce exactly one
//! response per job, in order, with good jobs succeeding and bad jobs
//! failing *structurally* — never by taking a worker (or the whole
//! batch/server) down.

use calyx_backend::BackendRegistry;
use calyx_core::errors::CalyxResult;
use calyx_core::ir::Context;
use calyx_frontend::{Frontend, FrontendOpts, FrontendRegistry};
use calyx_service::{serve, CompileService, JobDefaults, JobRequest, ServeOpts, Status};
use proptest::prelude::*;

const GOOD: &str = "component main() -> () {
    cells { r = std_reg(8); }
    wires { group g { r.in = 8'd7; r.write_en = 1'd1; g[done] = r.done; } }
    control { g; }
  }";

/// The job zoo: index → (request, should it succeed?).
fn job(kind: usize) -> (JobRequest, bool) {
    match kind {
        // A plain source job.
        0 => (
            JobRequest {
                source: Some(GOOD.to_string()),
                ..JobRequest::default()
            },
            true,
        ),
        // A generator job (no source at all).
        1 => (
            JobRequest {
                frontend: Some("systolic".to_string()),
                fopts: vec![
                    ("rows".to_string(), "1".to_string()),
                    ("cols".to_string(), "1".to_string()),
                    ("inner".to_string(), "1".to_string()),
                ],
                ..JobRequest::default()
            },
            true,
        ),
        // A parse error.
        2 => (
            JobRequest {
                source: Some("component main( {".to_string()),
                ..JobRequest::default()
            },
            false,
        ),
        // An unknown backend.
        3 => (
            JobRequest {
                source: Some(GOOD.to_string()),
                backend: Some("verilgo".to_string()),
                ..JobRequest::default()
            },
            false,
        ),
        // A missing input file.
        _ => (
            JobRequest {
                input: Some("/no/such/dir/missing.futil".to_string()),
                ..JobRequest::default()
            },
            false,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Eight workers, a random job mix: per-job outcomes match the mix
    /// exactly, and the aggregate verdict reflects whether any job
    /// failed (what the driver turns into the exit code).
    #[test]
    fn random_job_mixes_survive_eight_workers(kinds in prop::collection::vec(0usize..5, 1..24)) {
        let (reqs, expect_ok): (Vec<JobRequest>, Vec<bool>) =
            kinds.iter().map(|&k| job(k)).unzip();
        let service = CompileService::new();
        let summary = service.run_batch(&reqs, 8, false, &JobDefaults::default());

        prop_assert_eq!(summary.results.len(), reqs.len());
        for (i, (resp, expect)) in summary.results.iter().zip(&expect_ok).enumerate() {
            prop_assert_eq!(resp.id, i);
            prop_assert_eq!(
                resp.is_ok(), *expect,
                "job {} (kind {}): {:?}", i, kinds[i], resp.error
            );
            if !expect {
                // Failures are structured: a message, no partial result.
                prop_assert!(resp.error.is_some());
                prop_assert_eq!(resp.status, Status::Error);
                prop_assert!(resp.out.is_none());
            }
        }
        let any_bad = expect_ok.iter().any(|ok| !ok);
        prop_assert_eq!(summary.all_ok(), !any_bad);
        prop_assert_eq!(summary.failed(), expect_ok.iter().filter(|ok| !**ok).count());
    }
}

/// A frontend whose `parse` panics — the poisoned-input stand-in the
/// panic bulkhead exists for.
struct BoomFrontend;

impl Frontend for BoomFrontend {
    const NAME: &'static str = "boom";
    const DESCRIPTION: &'static str = "panics on parse (test only)";

    fn extensions() -> &'static [&'static str] {
        &[]
    }

    fn from_opts(_: &FrontendOpts) -> CalyxResult<Self> {
        Ok(BoomFrontend)
    }

    fn parse(&self, _: &str) -> CalyxResult<Context> {
        panic!("frontend exploded mid-parse")
    }
}

fn service_with_boom() -> CompileService {
    let mut frontends = FrontendRegistry::default();
    frontends.register::<BoomFrontend>();
    CompileService::with_registries(frontends, BackendRegistry::default())
}

/// A panicking job is one response, not one dead worker: the batch keeps
/// draining and later jobs still succeed.
#[test]
fn a_panicking_job_does_not_kill_the_batch() {
    let service = service_with_boom();
    let mut reqs = Vec::new();
    for _ in 0..3 {
        reqs.push(job(0).0);
        reqs.push(JobRequest {
            frontend: Some("boom".to_string()),
            source: Some(String::new()),
            ..JobRequest::default()
        });
    }
    // One worker: a lost thread would strand every later job.
    let summary = service.run_batch(&reqs, 1, false, &JobDefaults::default());
    assert_eq!(summary.results.len(), 6);
    for (i, resp) in summary.results.iter().enumerate() {
        if i % 2 == 0 {
            assert!(resp.is_ok(), "job {i}: {:?}", resp.error);
        } else {
            assert_eq!(resp.status, Status::Panic);
            assert!(
                resp.error.as_deref().unwrap().contains("frontend exploded"),
                "{:?}",
                resp.error
            );
        }
    }
    assert_eq!((summary.ok(), summary.failed()), (3, 3));
}

/// The acceptance criterion: `futil serve` outlives both a malformed
/// request and a job that panics inside the compiler, answering each
/// with a structured error and every later request normally.
#[test]
fn serve_survives_a_panicking_job() {
    let service = service_with_boom();
    let input = format!(
        "{}\n{}\n{}\n",
        r#"{"frontend": "boom", "source": ""}"#,
        r#"{"not even": "a valid request"}"#,
        format_args!("{{\"source\": {:?}}}", GOOD),
    );
    let out = serve(
        &service,
        input.as_bytes(),
        Vec::new(),
        &ServeOpts {
            jobs: 2,
            defaults: JobDefaults {
                inline_output: true,
                ..JobDefaults::default()
            },
        },
    )
    .expect("server reached EOF");
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "{text}");
    let status_of = |id: u64| {
        lines
            .iter()
            .map(|l| calyx_service::json::parse(l).unwrap())
            .find(|v| v.get("id").unwrap().as_u64() == Some(id))
            .unwrap()
            .get("status")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    };
    assert_eq!(status_of(0), "panic");
    assert_eq!(status_of(1), "error");
    assert_eq!(status_of(2), "ok");
}
