//! End-to-end tests of `futil build` and `futil plan`: route planning,
//! the content-addressed artifact cache (warm rebuilds, edit
//! invalidation, `--no-cache`), byte-identity with the direct
//! `-f`/`-p`/`-b` driver across the full PolyBench suite, and the
//! exit-2 diagnostics for unknown or unreachable states.

use calyx_polybench::KERNELS;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../examples/{name}"))
}

fn futil(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_futil"))
        .args(args)
        .output()
        .expect("futil spawns")
}

fn futil_stdin(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_futil"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("futil spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("stdin writes");
    child.wait_with_output().expect("futil exits")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A scratch directory (cache + inputs) that cleans up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("futil-plan-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }

    fn cache(&self) -> String {
        self.path("cache").to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The step-status lines with their (non-deterministic) timings
/// stripped: `futil: step <op>: ran|cached`.
fn step_lines(err: &str) -> Vec<String> {
    err.lines()
        .filter(|l| l.starts_with("futil: step "))
        .map(|l| l.split(" (").next().unwrap().to_string())
        .collect()
}

/// The acceptance differential: for every PolyBench kernel, a
/// plan-built verilog artifact is byte-identical to the direct
/// `-f polybench -b verilog` compilation — both cold (first build) and
/// from a warm cache (which must execute zero steps).
#[test]
fn plan_builds_are_byte_identical_to_direct_compilation_for_all_kernels() {
    let scratch = Scratch::new("differential");
    let cache = scratch.cache();
    for def in KERNELS {
        let direct = futil_stdin(
            &[
                "-",
                "-f",
                "polybench",
                "--fopt",
                &format!("kernel={}", def.name),
                "-b",
                "verilog",
            ],
            "",
        );
        assert_eq!(direct.status.code(), Some(0), "{}", stderr(&direct));
        assert!(
            !direct.stdout.is_empty(),
            "direct `{}` emitted nothing",
            def.name
        );

        let cold = futil_stdin(
            &[
                "build",
                "-",
                "--from",
                "polybench",
                "--to",
                "verilog",
                "--cache-dir",
                &cache,
            ],
            def.name,
        );
        assert_eq!(cold.status.code(), Some(0), "{}", stderr(&cold));
        assert_eq!(
            stdout(&cold),
            stdout(&direct),
            "cold plan build of `{}` differs from direct compilation",
            def.name
        );
        assert_eq!(
            step_lines(&stderr(&cold)),
            [
                "futil: step polybench-to-calyx: ran",
                "futil: step emit-verilog: ran"
            ],
            "kernel `{}`",
            def.name
        );

        let warm = futil_stdin(
            &[
                "build",
                "-",
                "--from",
                "polybench",
                "--to",
                "verilog",
                "--cache-dir",
                &cache,
            ],
            def.name,
        );
        assert_eq!(
            stdout(&warm),
            stdout(&direct),
            "warm `{}` differs",
            def.name
        );
        assert_eq!(
            step_lines(&stderr(&warm)),
            [
                "futil: step polybench-to-calyx: cached",
                "futil: step emit-verilog: cached"
            ],
            "warm rebuild of `{}` must execute zero steps",
            def.name
        );
    }
}

/// Editing only a comment re-runs the frontend step (the input bytes
/// changed) but leaves every downstream step cached: the canonical
/// Calyx is unchanged, so content addressing skips the rest.
#[test]
fn comment_only_edit_reruns_only_the_frontend_step() {
    let scratch = Scratch::new("invalidate");
    let cache = scratch.cache();
    let input = scratch.path("prog.fuse");
    let dotprod = std::fs::read_to_string(example("dotprod.fuse")).expect("example exists");
    std::fs::write(&input, &dotprod).expect("input writes");
    let input = input.to_str().unwrap().to_string();

    let cold = futil(&["build", &input, "--to", "verilog", "--cache-dir", &cache]);
    assert_eq!(cold.status.code(), Some(0), "{}", stderr(&cold));
    assert_eq!(
        step_lines(&stderr(&cold)),
        [
            "futil: step dahlia-to-calyx: ran",
            "futil: step emit-verilog: ran"
        ]
    );

    // Comment-only edit: different bytes, same program.
    std::fs::write(&input, format!("// an edited comment\n{dotprod}")).expect("edit writes");
    let edited = futil(&["build", &input, "--to", "verilog", "--cache-dir", &cache]);
    assert_eq!(edited.status.code(), Some(0), "{}", stderr(&edited));
    assert_eq!(
        step_lines(&stderr(&edited)),
        [
            "futil: step dahlia-to-calyx: ran",
            "futil: step emit-verilog: cached"
        ],
        "downstream steps must stay cached across a comment-only edit"
    );
    assert_eq!(stdout(&edited), stdout(&cold));

    // Unchanged rerun: everything cached, zero compiles.
    let warm = futil(&["build", &input, "--to", "verilog", "--cache-dir", &cache]);
    assert_eq!(
        step_lines(&stderr(&warm)),
        [
            "futil: step dahlia-to-calyx: cached",
            "futil: step emit-verilog: cached"
        ]
    );

    // `--no-cache` forces every step, and writes nothing.
    let forced = futil(&[
        "build",
        &input,
        "--to",
        "verilog",
        "--cache-dir",
        &cache,
        "--no-cache",
    ]);
    assert_eq!(
        step_lines(&stderr(&forced)),
        [
            "futil: step dahlia-to-calyx: ran",
            "futil: step emit-verilog: ran"
        ]
    );
    assert_eq!(stdout(&forced), stdout(&cold));
}

/// An option change invalidates exactly the steps that declared they
/// consume it: `--cycles` re-runs the emission but not the frontend.
#[test]
fn cycles_change_invalidates_the_emission_but_not_the_frontend() {
    let scratch = Scratch::new("cycles");
    let cache = scratch.cache();
    let file = example("dotprod.fuse");
    let file = file.to_str().unwrap();
    let first = futil(&["build", file, "--to", "sim-report", "--cache-dir", &cache]);
    assert_eq!(first.status.code(), Some(0), "{}", stderr(&first));
    let second = futil(&[
        "build",
        file,
        "--to",
        "sim-report",
        "--cache-dir",
        &cache,
        "--cycles",
        "500",
    ]);
    assert_eq!(
        step_lines(&stderr(&second)),
        [
            "futil: step dahlia-to-calyx: cached",
            "futil: step emit-sim: ran"
        ],
        "only the cycles-consuming step re-runs"
    );
}

/// `futil plan` prints the route without executing anything (and
/// without touching the cache).
#[test]
fn plan_is_a_dry_run_with_a_pinned_route_printout() {
    let scratch = Scratch::new("dry-run");
    let cache = scratch.cache();
    let file = example("dotprod.fuse");
    let out = futil(&["plan", file.to_str().unwrap(), "--to", "verilog"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_eq!(
        stdout(&out),
        "plan: dahlia -> verilog (2 steps)\n\
         \x20 1. dahlia-to-calyx   dahlia -> calyx\n\
         \x20 2. emit-verilog      calyx -> verilog\n"
    );
    assert!(
        !scratch.path("cache").exists(),
        "plan must not write the cache"
    );
    let _ = cache;
}

/// A same-state route is zero steps: the output is the input, verbatim.
#[test]
fn same_state_build_echoes_the_input() {
    let out = futil(&[
        "build",
        example("dotprod.fuse").to_str().unwrap(),
        "--to",
        "dahlia",
        "--no-cache",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let original = std::fs::read_to_string(example("dotprod.fuse")).unwrap();
    assert_eq!(stdout(&out), original);
    assert!(step_lines(&stderr(&out)).is_empty());
}

/// Unknown `--to`/`--from` states are usage errors (exit 2) listing
/// every valid state; unreachable goals list the reachable ones.
#[test]
fn unknown_and_unreachable_states_exit_2_with_the_valid_choices() {
    let file = example("dotprod.fuse");
    let file = file.to_str().unwrap();
    let out = futil(&["build", file, "--to", "nonsense"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("state `nonsense`"), "{err}");
    for state in ["calyx", "dahlia", "verilog", "lint-report"] {
        assert!(err.contains(state), "missing `{state}` in {err}");
    }

    // dahlia is a source state: nothing routes *to* it.
    let out = futil(&["build", file, "--from", "calyx", "--to", "dahlia"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(
        err.contains("no route from state `calyx` to `dahlia`"),
        "{err}"
    );
    assert!(err.contains("reachable from `calyx`"), "{err}");
    assert!(err.contains("verilog"), "{err}");

    // An un-inferable input without `--from` is a usage error too.
    let out = futil_stdin(&["build", "-", "--to", "verilog"], "");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("cannot infer a state"),
        "{}",
        stderr(&out)
    );

    // `--to` is required.
    let out = futil(&["build", file]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--to"), "{}", stderr(&out));
}

/// `--list-states` and `--list-ops` print the derived graph — pinned
/// against the library's own derivation so the CLI can never drift.
#[test]
fn list_states_and_ops_match_the_derived_graph() {
    let graph = calyx_plan::derive::standard();
    let states = futil(&["build", "--list-states"]);
    assert_eq!(states.status.code(), Some(0));
    let listing = stdout(&states);
    for s in graph.states() {
        assert!(
            listing.contains(&s.name),
            "missing state `{}` in listing",
            s.name
        );
        assert!(
            listing.contains(&s.description),
            "missing description of `{}`",
            s.name
        );
    }
    let ops = futil(&["plan", "--list-ops"]);
    assert_eq!(ops.status.code(), Some(0));
    let listing = stdout(&ops);
    for op in graph.ops() {
        assert!(
            listing.contains(op.name()),
            "missing op `{}` in listing",
            op.name()
        );
    }
}

/// `-o` writes the artifact to a file (atomically) instead of stdout.
#[test]
fn build_output_file_matches_stdout_output() {
    let scratch = Scratch::new("outfile");
    let cache = scratch.cache();
    let file = example("dotprod.fuse");
    let file = file.to_str().unwrap();
    let out_path = scratch.path("dotprod.sv");
    let to_file = futil(&[
        "build",
        file,
        "--to",
        "verilog",
        "--cache-dir",
        &cache,
        "-o",
        out_path.to_str().unwrap(),
    ]);
    assert_eq!(to_file.status.code(), Some(0), "{}", stderr(&to_file));
    assert!(to_file.stdout.is_empty());
    let direct = futil(&[file, "-f", "dahlia", "-b", "verilog"]);
    assert_eq!(
        std::fs::read_to_string(&out_path).expect("output written"),
        stdout(&direct)
    );
}

/// Frontend parse errors inside a build step still render caret
/// diagnostics against the original source, exit 1.
#[test]
fn build_renders_caret_diagnostics_for_bad_input() {
    let scratch = Scratch::new("caret");
    let input = scratch.path("bad.fuse");
    std::fs::write(&input, "let x: ubit<8> = ;\n").expect("input writes");
    let out = futil(&[
        "build",
        input.to_str().unwrap(),
        "--to",
        "verilog",
        "--no-cache",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("bad.fuse"), "{err}");
    assert!(err.contains('^'), "caret missing: {err}");
}
