//! End-to-end tests of `futil check`: the bad-example corpus maps to the
//! expected diagnostic codes and exit statuses, the flagship par-race
//! report is pinned byte-for-byte (text and JSON — the JSON schema is a
//! stable interface), `--deny warnings` promotes warnings to exit 1,
//! `--check` lints before compiling, and `--list-lints` reflects the
//! registry.

use calyx_core::lint::LintRegistry;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

/// The repository root, so relative `examples/bad/...` paths appear
/// verbatim in the pinned diagnostics.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn futil(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_futil"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("futil spawns")
}

/// Run `futil` with `input` piped to stdin (for the `-` input path).
fn futil_stdin(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_futil"))
        .args(args)
        .current_dir(repo_root())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("futil spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("stdin writes");
    child.wait_with_output().expect("futil exits")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Every file in the bad corpus trips exactly the lint it demonstrates:
/// the named codes appear in the report, and the exit status is 1 for
/// error-severity findings, 0 for warning-only files.
#[test]
fn bad_corpus_reports_the_expected_codes() {
    // (file, codes that must appear, exit status without --deny).
    // well-formed findings quote whole-program violations, not spans, so
    // that file is the one entry with no caret expectation.
    let corpus: &[(&str, &[&str], i32)] = &[
        ("par_race.futil", &["C0101", "C0103"], 1),
        ("comb_cycle.futil", &["C0102"], 1),
        ("multiple_drivers.futil", &["C0103"], 1),
        ("unreachable_control.futil", &["C0104"], 1),
        ("uninit_read.futil", &["C0105"], 1),
        ("dead_cell.futil", &["C0201"], 0),
        ("dead_group.futil", &["C0202"], 0),
        ("unused_port.futil", &["C0203"], 0),
        ("width_truncation.futil", &["C0204"], 0),
        ("dead_write.futil", &["C0205"], 0),
        ("const_loop.futil", &["C0206"], 0),
    ];
    // Every registered lint code must have a failing sample in the
    // corpus (`well-formed` has its own dedicated test below).
    let covered: std::collections::BTreeSet<&str> = corpus
        .iter()
        .flat_map(|(_, codes, _)| codes.iter().copied())
        .chain(["C0100"])
        .collect();
    for l in LintRegistry::default().lints() {
        assert!(
            covered.contains(l.code),
            "lint `{}` ({}) has no failing examples/bad/ sample",
            l.name,
            l.code
        );
    }
    // The corpus and the table must cover each other.
    let mut listed: Vec<&str> = corpus.iter().map(|(f, _, _)| *f).collect();
    listed.push("well_formed.futil");
    for entry in std::fs::read_dir(repo_root().join("examples/bad")).unwrap() {
        let name = entry.unwrap().file_name();
        assert!(
            listed.contains(&name.to_str().unwrap()),
            "examples/bad/{name:?} has no expectation in this test"
        );
    }
    for &(file, codes, exit) in corpus {
        let path = format!("examples/bad/{file}");
        let out = futil(&["check", &path]);
        assert_eq!(out.status.code(), Some(exit), "{path}: {}", stdout(&out));
        let text = stdout(&out);
        for code in codes {
            assert!(text.contains(code), "{path}: missing {code} in:\n{text}");
        }
        // Every finding carries a position here, so a caret must render.
        assert!(text.contains('^'), "{path}: no caret in:\n{text}");
    }
}

/// `well_formed.futil` packs two structural violations into one program;
/// the collecting validator reports both in a single run instead of
/// stopping at the first.
#[test]
fn well_formed_reports_every_violation_at_once() {
    let out = futil(&["check", "examples/bad/well_formed.futil"]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert_eq!(text.matches("error[C0100]").count(), 2, "{text}");
    assert!(text.contains("width mismatch"), "{text}");
    assert!(text.contains("never writes `set[done]`"), "{text}");
    assert!(text.contains("2 errors"), "{text}");
}

/// The flagship report, byte-for-byte: three errors in one run (the race
/// itself plus both double-driven ports), each with a caret into the
/// source and notes pointing at the other group.
#[test]
fn par_race_text_report_is_pinned() {
    let out = futil(&["check", "examples/bad/par_race.futil"]);
    assert_eq!(out.status.code(), Some(1));
    let expected = "\
error[C0101] examples/bad/par_race.futil:10:11: groups `wa` and `wb` may run in the same `par` and both write register `r`
 10 |     group wa {
    |           ^
  note: simultaneous accesses to one state element have undefined order in Calyx
  note: `wb` is declared at line 15
error[C0103] examples/bad/par_race.futil:11:7: port `r.in` is driven unconditionally by both group `wa` and group `wb`, which may run in the same `par`
 11 |       r.in = 8'd1;
    |       ^
  note: a port must have exactly one active driver per cycle
  note: the other driver is at line 16
error[C0103] examples/bad/par_race.futil:12:7: port `r.write_en` is driven unconditionally by both group `wa` and group `wb`, which may run in the same `par`
 12 |       r.write_en = 1'd1;
    |       ^
  note: a port must have exactly one active driver per cycle
  note: the other driver is at line 17
3 errors, 0 warnings
";
    assert_eq!(stdout(&out), expected);
}

/// The JSON report is a stable machine interface: pinned byte-for-byte.
#[test]
fn par_race_json_report_is_pinned() {
    let out = futil(&["check", "examples/bad/par_race.futil", "--format", "json"]);
    assert_eq!(out.status.code(), Some(1));
    let expected = r#"{
  "file": "examples/bad/par_race.futil",
  "errors": 3,
  "warnings": 0,
  "diagnostics": [
    {"code": "C0101", "lint": "par-race", "severity": "error", "line": 10, "col": 11, "message": "groups `wa` and `wb` may run in the same `par` and both write register `r`", "notes": ["simultaneous accesses to one state element have undefined order in Calyx", "`wb` is declared at line 15"]},
    {"code": "C0103", "lint": "multiple-drivers", "severity": "error", "line": 11, "col": 7, "message": "port `r.in` is driven unconditionally by both group `wa` and group `wb`, which may run in the same `par`", "notes": ["a port must have exactly one active driver per cycle", "the other driver is at line 16"]},
    {"code": "C0103", "lint": "multiple-drivers", "severity": "error", "line": 12, "col": 7, "message": "port `r.write_en` is driven unconditionally by both group `wa` and group `wb`, which may run in the same `par`", "notes": ["a port must have exactly one active driver per cycle", "the other driver is at line 17"]}
  ]
}
"#;
    assert_eq!(stdout(&out), expected);
}

/// The dataflow-backed lints' reports, byte-for-byte: one sample each
/// for `uninit-read` (must-style reaching-defs), `dead-write`
/// (liveness), and `const-loop` (constant propagation), in text and
/// JSON.
#[test]
fn dataflow_lint_reports_are_pinned() {
    let out = futil(&["check", "examples/bad/uninit_read.futil"]);
    assert_eq!(out.status.code(), Some(1));
    let expected = "\
error[C0105] examples/bad/uninit_read.futil:17:7: group `read` reads `r` before any write can reach it
 17 |       m.write_data = r.out;
    |       ^
  note: `r` powers on with an undefined value; every path reads it unwritten here
1 error, 0 warnings
";
    assert_eq!(stdout(&out), expected);

    let out = futil(&["check", "examples/bad/dead_write.futil"]);
    assert_eq!(out.status.code(), Some(0));
    let expected = "\
warning[C0205] examples/bad/dead_write.futil:13:7: group `first` writes `r` but nothing ever reads that value
 13 |       r.in = add.out;
    |       ^
  note: on every path from here `r` is overwritten or the schedule ends without reading it
0 errors, 1 warning
";
    assert_eq!(stdout(&out), expected);

    let out = futil(&["check", "examples/bad/const_loop.futil"]);
    assert_eq!(out.status.code(), Some(0));
    let expected = "\
warning[C0206] examples/bad/const_loop.futil:16:11: `while lt.out` never terminates: the condition is always 1 given the registers reaching the loop
 16 |     group cond {
    |           ^
  note: every register feeding `lt.out` holds the same constant on all paths to the loop, including around the back edge
0 errors, 1 warning
";
    assert_eq!(stdout(&out), expected);
}

/// The JSON form of the same three reports, also a pinned interface.
#[test]
fn dataflow_lint_json_reports_are_pinned() {
    let out = futil(&[
        "check",
        "examples/bad/uninit_read.futil",
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let expected = r#"{
  "file": "examples/bad/uninit_read.futil",
  "errors": 1,
  "warnings": 0,
  "diagnostics": [
    {"code": "C0105", "lint": "uninit-read", "severity": "error", "line": 17, "col": 7, "message": "group `read` reads `r` before any write can reach it", "notes": ["`r` powers on with an undefined value; every path reads it unwritten here"]}
  ]
}
"#;
    assert_eq!(stdout(&out), expected);

    let out = futil(&["check", "examples/bad/dead_write.futil", "--format", "json"]);
    assert_eq!(out.status.code(), Some(0));
    let expected = r#"{
  "file": "examples/bad/dead_write.futil",
  "errors": 0,
  "warnings": 1,
  "diagnostics": [
    {"code": "C0205", "lint": "dead-write", "severity": "warning", "line": 13, "col": 7, "message": "group `first` writes `r` but nothing ever reads that value", "notes": ["on every path from here `r` is overwritten or the schedule ends without reading it"]}
  ]
}
"#;
    assert_eq!(stdout(&out), expected);

    let out = futil(&["check", "examples/bad/const_loop.futil", "--format", "json"]);
    assert_eq!(out.status.code(), Some(0));
    let expected = r#"{
  "file": "examples/bad/const_loop.futil",
  "errors": 0,
  "warnings": 1,
  "diagnostics": [
    {"code": "C0206", "lint": "const-loop", "severity": "warning", "line": 16, "col": 11, "message": "`while lt.out` never terminates: the condition is always 1 given the registers reaching the loop", "notes": ["every register feeding `lt.out` holds the same constant on all paths to the loop, including around the back edge"]}
  ]
}
"#;
    assert_eq!(stdout(&out), expected);
}

/// `--explain` prints a lint's long-form documentation by code or name
/// and exits 0; an unknown query is a usage error listing every code.
#[test]
fn explain_prints_lint_documentation() {
    for query in ["C0105", "uninit-read"] {
        let out = futil(&["check", "--explain", query]);
        assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
        let text = stdout(&out);
        assert!(text.starts_with("C0105: uninit-read (error)"), "{text}");
        assert!(text.contains("reaching-definitions dataflow"), "{text}");
    }

    // Every registered lint has a working --explain entry.
    for l in LintRegistry::default().lints() {
        let out = futil(&["check", "--explain", l.code]);
        assert_eq!(out.status.code(), Some(0), "--explain {}", l.code);
        assert!(stdout(&out).contains(l.description), "--explain {}", l.code);
    }

    let out = futil(&["check", "--explain", "C9999"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("no lint with code or name `C9999`"), "{err}");
    for l in LintRegistry::default().lints() {
        assert!(err.contains(l.code), "missing {} in:\n{err}", l.code);
    }
}

/// The per-lint level flags: `--deny <lint>` promotes one lint to an
/// error, `--allow <lint>` drops its findings, and `--allow` wins over
/// both `--deny <lint>` and the blanket `--deny warnings`.
#[test]
fn allow_and_deny_control_exit_codes_per_lint() {
    let sample = "examples/bad/dead_write.futil";
    // Warning-severity finding: exit 0 by default.
    assert_eq!(futil(&["check", sample]).status.code(), Some(0));
    // Denying the one lint promotes it to exit 1.
    let denied = futil(&["check", sample, "--deny", "dead-write"]);
    assert_eq!(denied.status.code(), Some(1));
    assert!(
        stdout(&denied).contains("error[C0205]"),
        "{}",
        stdout(&denied)
    );
    // Allowing it drops the finding even under blanket --deny warnings.
    let allowed = futil(&[
        "check",
        sample,
        "--allow",
        "dead-write",
        "--deny",
        "warnings",
    ]);
    assert_eq!(allowed.status.code(), Some(0));
    assert!(allowed.stdout.is_empty(), "{}", stdout(&allowed));
    // Allow wins over a per-lint deny of the same lint.
    let both = futil(&[
        "check",
        sample,
        "--allow",
        "dead-write",
        "--deny",
        "dead-write",
    ]);
    assert_eq!(both.status.code(), Some(0));
    // Allowing an *error* lint suppresses the failure entirely.
    let out = futil(&[
        "check",
        "examples/bad/uninit_read.futil",
        "--allow",
        "uninit-read",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    // A typo in either flag is a usage error listing the valid lints.
    for flag in ["--allow", "--deny"] {
        let out = futil(&["check", sample, flag, "no-such-lint"]);
        assert_eq!(out.status.code(), Some(2));
        assert!(stderr(&out).contains("valid lints"), "{}", stderr(&out));
    }
}

/// A clean program prints nothing in text mode (and a zero-count JSON
/// object in JSON mode) and exits 0.
#[test]
fn clean_program_is_silent_and_exits_0() {
    let out = futil(&["check", "examples/counter.futil"]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(
        out.stdout.is_empty(),
        "clean check printed: {}",
        stdout(&out)
    );

    let json = futil(&["check", "examples/counter.futil", "--format", "json"]);
    assert_eq!(json.status.code(), Some(0));
    let body = stdout(&json);
    assert!(body.contains("\"errors\": 0"), "{body}");
    assert!(body.contains("\"warnings\": 0"), "{body}");
}

/// `--deny warnings` promotes warning-only findings to exit 1 — the CI
/// posture for keeping a codebase lint-clean.
#[test]
fn deny_warnings_promotes_warnings_to_exit_1() {
    let out = futil(&["check", "examples/bad/dead_cell.futil"]);
    assert_eq!(out.status.code(), Some(0));

    let denied = futil(&[
        "check",
        "examples/bad/dead_cell.futil",
        "--deny",
        "warnings",
    ]);
    assert_eq!(denied.status.code(), Some(1));

    // A clean program stays clean even under --deny.
    let clean = futil(&["check", "examples/counter.futil", "--deny", "warnings"]);
    assert_eq!(clean.status.code(), Some(0));
}

/// `--check` in compile mode lints after parsing and refuses to compile
/// a program with error-severity findings; diagnostics go to stderr so
/// stdout stays reserved for the backend.
#[test]
fn check_flag_gates_compilation() {
    let out = futil(&["examples/bad/par_race.futil", "--check", "-b", "verilog"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        out.stdout.is_empty(),
        "emitted despite --check: {}",
        stdout(&out)
    );
    let err = stderr(&out);
    assert!(err.contains("C0101"), "{err}");
    assert!(err.contains("not compiling"), "{err}");

    // A clean program compiles straight through.
    let out = futil(&["examples/counter.futil", "--check", "-b", "verilog"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("module main"), "{}", stdout(&out));
}

/// `futil check -` reads stdin and anchors diagnostics to `<stdin>`.
#[test]
fn check_reads_stdin() {
    let src =
        std::fs::read_to_string(repo_root().join("examples/bad/width_truncation.futil")).unwrap();
    let out = futil_stdin(&["check", "-"], &src);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("<stdin>:9:14"), "{text}");
    assert!(text.contains("C0204"), "{text}");
}

/// `--list-lints` names every registered lint with its description, code,
/// and severity — derived from the registry, so it can never drift.
#[test]
fn list_lints_reflects_the_registry() {
    for args in [&["--list-lints"][..], &["check", "--list-lints"][..]] {
        let out = futil(args);
        assert_eq!(out.status.code(), Some(0));
        let text = stdout(&out);
        for l in LintRegistry::default().lints() {
            assert!(text.contains(l.name), "missing `{}`: {text}", l.name);
            assert!(text.contains(l.description), "missing `{}`: {text}", l.name);
            assert!(text.contains(l.code), "missing `{}`: {text}", l.code);
        }
    }
}

/// Invocation mistakes are usage errors (exit 2), not lint findings.
#[test]
fn check_usage_errors_exit_2() {
    let out = futil(&["check"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("no input file"), "{}", stderr(&out));

    // `errors` is neither `warnings` nor a lint name.
    let out = futil(&["check", "examples/counter.futil", "--deny", "errors"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("valid lints"), "{}", stderr(&out));

    let out = futil(&["check", "examples/counter.futil", "--format", "xml"]);
    assert_eq!(out.status.code(), Some(2));

    // Compile-only flags are rejected under `check`.
    let out = futil(&["check", "examples/counter.futil", "-b", "verilog"]);
    assert_eq!(out.status.code(), Some(2));
}
