//! End-to-end tests of `futil check`: the bad-example corpus maps to the
//! expected diagnostic codes and exit statuses, the flagship par-race
//! report is pinned byte-for-byte (text and JSON — the JSON schema is a
//! stable interface), `--deny warnings` promotes warnings to exit 1,
//! `--check` lints before compiling, and `--list-lints` reflects the
//! registry.

use calyx_core::lint::LintRegistry;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

/// The repository root, so relative `examples/bad/...` paths appear
/// verbatim in the pinned diagnostics.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn futil(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_futil"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("futil spawns")
}

/// Run `futil` with `input` piped to stdin (for the `-` input path).
fn futil_stdin(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_futil"))
        .args(args)
        .current_dir(repo_root())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("futil spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("stdin writes");
    child.wait_with_output().expect("futil exits")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Every file in the bad corpus trips exactly the lint it demonstrates:
/// the named codes appear in the report, and the exit status is 1 for
/// error-severity findings, 0 for warning-only files.
#[test]
fn bad_corpus_reports_the_expected_codes() {
    // (file, codes that must appear, exit status without --deny).
    // well-formed findings quote whole-program violations, not spans, so
    // that file is the one entry with no caret expectation.
    let corpus: &[(&str, &[&str], i32)] = &[
        ("par_race.futil", &["C0101", "C0103"], 1),
        ("comb_cycle.futil", &["C0102"], 1),
        ("multiple_drivers.futil", &["C0103"], 1),
        ("unreachable_control.futil", &["C0104"], 1),
        ("dead_cell.futil", &["C0201"], 0),
        ("dead_group.futil", &["C0202"], 0),
        ("unused_port.futil", &["C0203"], 0),
        ("width_truncation.futil", &["C0204"], 0),
    ];
    // The corpus and the table must cover each other.
    let mut listed: Vec<&str> = corpus.iter().map(|(f, _, _)| *f).collect();
    listed.push("well_formed.futil");
    for entry in std::fs::read_dir(repo_root().join("examples/bad")).unwrap() {
        let name = entry.unwrap().file_name();
        assert!(
            listed.contains(&name.to_str().unwrap()),
            "examples/bad/{name:?} has no expectation in this test"
        );
    }
    for &(file, codes, exit) in corpus {
        let path = format!("examples/bad/{file}");
        let out = futil(&["check", &path]);
        assert_eq!(out.status.code(), Some(exit), "{path}: {}", stdout(&out));
        let text = stdout(&out);
        for code in codes {
            assert!(text.contains(code), "{path}: missing {code} in:\n{text}");
        }
        // Every finding carries a position here, so a caret must render.
        assert!(text.contains('^'), "{path}: no caret in:\n{text}");
    }
}

/// `well_formed.futil` packs two structural violations into one program;
/// the collecting validator reports both in a single run instead of
/// stopping at the first.
#[test]
fn well_formed_reports_every_violation_at_once() {
    let out = futil(&["check", "examples/bad/well_formed.futil"]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert_eq!(text.matches("error[C0100]").count(), 2, "{text}");
    assert!(text.contains("width mismatch"), "{text}");
    assert!(text.contains("never writes `set[done]`"), "{text}");
    assert!(text.contains("2 errors"), "{text}");
}

/// The flagship report, byte-for-byte: three errors in one run (the race
/// itself plus both double-driven ports), each with a caret into the
/// source and notes pointing at the other group.
#[test]
fn par_race_text_report_is_pinned() {
    let out = futil(&["check", "examples/bad/par_race.futil"]);
    assert_eq!(out.status.code(), Some(1));
    let expected = "\
error[C0101] examples/bad/par_race.futil:10:11: groups `wa` and `wb` may run in the same `par` and both write register `r`
 10 |     group wa {
    |           ^
  note: simultaneous accesses to one state element have undefined order in Calyx
  note: `wb` is declared at line 15
error[C0103] examples/bad/par_race.futil:11:7: port `r.in` is driven unconditionally by both group `wa` and group `wb`, which may run in the same `par`
 11 |       r.in = 8'd1;
    |       ^
  note: a port must have exactly one active driver per cycle
  note: the other driver is at line 16
error[C0103] examples/bad/par_race.futil:12:7: port `r.write_en` is driven unconditionally by both group `wa` and group `wb`, which may run in the same `par`
 12 |       r.write_en = 1'd1;
    |       ^
  note: a port must have exactly one active driver per cycle
  note: the other driver is at line 17
3 errors, 0 warnings
";
    assert_eq!(stdout(&out), expected);
}

/// The JSON report is a stable machine interface: pinned byte-for-byte.
#[test]
fn par_race_json_report_is_pinned() {
    let out = futil(&["check", "examples/bad/par_race.futil", "--format", "json"]);
    assert_eq!(out.status.code(), Some(1));
    let expected = r#"{
  "file": "examples/bad/par_race.futil",
  "errors": 3,
  "warnings": 0,
  "diagnostics": [
    {"code": "C0101", "lint": "par-race", "severity": "error", "line": 10, "col": 11, "message": "groups `wa` and `wb` may run in the same `par` and both write register `r`", "notes": ["simultaneous accesses to one state element have undefined order in Calyx", "`wb` is declared at line 15"]},
    {"code": "C0103", "lint": "multiple-drivers", "severity": "error", "line": 11, "col": 7, "message": "port `r.in` is driven unconditionally by both group `wa` and group `wb`, which may run in the same `par`", "notes": ["a port must have exactly one active driver per cycle", "the other driver is at line 16"]},
    {"code": "C0103", "lint": "multiple-drivers", "severity": "error", "line": 12, "col": 7, "message": "port `r.write_en` is driven unconditionally by both group `wa` and group `wb`, which may run in the same `par`", "notes": ["a port must have exactly one active driver per cycle", "the other driver is at line 17"]}
  ]
}
"#;
    assert_eq!(stdout(&out), expected);
}

/// A clean program prints nothing in text mode (and a zero-count JSON
/// object in JSON mode) and exits 0.
#[test]
fn clean_program_is_silent_and_exits_0() {
    let out = futil(&["check", "examples/counter.futil"]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(
        out.stdout.is_empty(),
        "clean check printed: {}",
        stdout(&out)
    );

    let json = futil(&["check", "examples/counter.futil", "--format", "json"]);
    assert_eq!(json.status.code(), Some(0));
    let body = stdout(&json);
    assert!(body.contains("\"errors\": 0"), "{body}");
    assert!(body.contains("\"warnings\": 0"), "{body}");
}

/// `--deny warnings` promotes warning-only findings to exit 1 — the CI
/// posture for keeping a codebase lint-clean.
#[test]
fn deny_warnings_promotes_warnings_to_exit_1() {
    let out = futil(&["check", "examples/bad/dead_cell.futil"]);
    assert_eq!(out.status.code(), Some(0));

    let denied = futil(&[
        "check",
        "examples/bad/dead_cell.futil",
        "--deny",
        "warnings",
    ]);
    assert_eq!(denied.status.code(), Some(1));

    // A clean program stays clean even under --deny.
    let clean = futil(&["check", "examples/counter.futil", "--deny", "warnings"]);
    assert_eq!(clean.status.code(), Some(0));
}

/// `--check` in compile mode lints after parsing and refuses to compile
/// a program with error-severity findings; diagnostics go to stderr so
/// stdout stays reserved for the backend.
#[test]
fn check_flag_gates_compilation() {
    let out = futil(&["examples/bad/par_race.futil", "--check", "-b", "verilog"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        out.stdout.is_empty(),
        "emitted despite --check: {}",
        stdout(&out)
    );
    let err = stderr(&out);
    assert!(err.contains("C0101"), "{err}");
    assert!(err.contains("not compiling"), "{err}");

    // A clean program compiles straight through.
    let out = futil(&["examples/counter.futil", "--check", "-b", "verilog"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("module main"), "{}", stdout(&out));
}

/// `futil check -` reads stdin and anchors diagnostics to `<stdin>`.
#[test]
fn check_reads_stdin() {
    let src =
        std::fs::read_to_string(repo_root().join("examples/bad/width_truncation.futil")).unwrap();
    let out = futil_stdin(&["check", "-"], &src);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("<stdin>:9:14"), "{text}");
    assert!(text.contains("C0204"), "{text}");
}

/// `--list-lints` names every registered lint with its description, code,
/// and severity — derived from the registry, so it can never drift.
#[test]
fn list_lints_reflects_the_registry() {
    for args in [&["--list-lints"][..], &["check", "--list-lints"][..]] {
        let out = futil(args);
        assert_eq!(out.status.code(), Some(0));
        let text = stdout(&out);
        for l in LintRegistry::default().lints() {
            assert!(text.contains(l.name), "missing `{}`: {text}", l.name);
            assert!(text.contains(l.description), "missing `{}`: {text}", l.name);
            assert!(text.contains(l.code), "missing `{}`: {text}", l.code);
        }
    }
}

/// Invocation mistakes are usage errors (exit 2), not lint findings.
#[test]
fn check_usage_errors_exit_2() {
    let out = futil(&["check"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("no input file"), "{}", stderr(&out));

    let out = futil(&["check", "examples/counter.futil", "--deny", "errors"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("`--deny` expects"),
        "{}",
        stderr(&out)
    );

    let out = futil(&["check", "examples/counter.futil", "--format", "xml"]);
    assert_eq!(out.status.code(), Some(2));

    // Compile-only flags are rejected under `check`.
    let out = futil(&["check", "examples/counter.futil", "-b", "verilog"]);
    assert_eq!(out.status.code(), Some(2));
}
