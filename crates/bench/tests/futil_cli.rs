//! End-to-end tests of the `futil` binary's backend surface: registry-
//! driven `-b`, `--list-backends`, `-o`, pipeline auto-append, and clean
//! precondition failures.

use calyx_backend::BackendRegistry;
use std::path::PathBuf;
use std::process::{Command, Output};

fn counter() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/counter.futil")
}

fn futil(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_futil"))
        .args(args)
        .output()
        .expect("futil spawns")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// An explicit pipeline that leaves the precondition unmet fails with a
/// clean error — exit 1, no partial output — naming the backend and the
/// missing passes.
#[test]
fn unmet_precondition_is_a_clean_exit_1_with_no_output() {
    let file = counter();
    let out = futil(&[file.to_str().unwrap(), "-b", "verilog", "-p", "none"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(out.stdout.is_empty(), "partial output: {}", stdout(&out));
    let err = stderr(&out);
    assert!(
        err.contains("backend `verilog` precondition failed"),
        "{err}"
    );
    assert!(err.contains("-p lower"), "{err}");
}

/// Unknown backends exit 2 with the registry's message listing the valid
/// choices (derived, not hardcoded).
#[test]
fn unknown_backend_exits_2_listing_registry_choices() {
    let file = counter();
    let out = futil(&[file.to_str().unwrap(), "-b", "verilgo"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    for b in BackendRegistry::default().backends() {
        assert!(err.contains(b.name), "missing `{}` in: {err}", b.name);
    }
}

/// `--list-backends` names every registered backend with its description
/// and required pipeline.
#[test]
fn list_backends_reflects_the_registry() {
    let out = futil(&["--list-backends"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for b in BackendRegistry::default().backends() {
        assert!(text.contains(b.name), "{text}");
        assert!(text.contains(b.description), "{text}");
    }
    assert!(text.contains("[pipeline: lower]"), "{text}");
}

/// The usage text derives its `-b` choices from the registry.
#[test]
fn help_derives_backend_list_from_registry() {
    let out = futil(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let names: Vec<&str> = BackendRegistry::default()
        .backends()
        .iter()
        .map(|b| b.name)
        .collect();
    assert!(
        stdout(&out).contains(&format!("-b {}", names.join("|"))),
        "{}",
        stdout(&out)
    );
}

/// The full smoke matrix: every registered backend accepts the counter
/// with no explicit pipeline (the driver appends the backend's required
/// pipeline) and produces non-empty output.
#[test]
fn every_backend_runs_the_counter_end_to_end() {
    let file = counter();
    for b in BackendRegistry::default().backends() {
        let out = futil(&[file.to_str().unwrap(), "-b", b.name]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "backend `{}`: {}",
            b.name,
            stderr(&out)
        );
        assert!(
            !out.stdout.is_empty(),
            "backend `{}` emitted nothing",
            b.name
        );
    }
}

/// `-o` streams to a file; the bytes match the stdout mode.
#[test]
fn output_file_matches_stdout() {
    let file = counter();
    let via_stdout = futil(&[file.to_str().unwrap(), "-p", "lower", "-b", "verilog"]);
    assert_eq!(via_stdout.status.code(), Some(0));

    let target = std::env::temp_dir().join("futil_cli_counter.sv");
    let _ = std::fs::remove_file(&target);
    let out = futil(&[
        file.to_str().unwrap(),
        "-p",
        "lower",
        "-b",
        "verilog",
        "-o",
        target.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(out.stdout.is_empty(), "stdout not empty with -o");
    let written = std::fs::read(&target).unwrap();
    assert_eq!(written, via_stdout.stdout);
    let _ = std::fs::remove_file(&target);
}

/// A failed emission with `-o` must not destroy an existing output file
/// (emission goes to a temp file renamed into place on success).
#[test]
fn failed_emission_preserves_existing_output_file() {
    let file = counter();
    let target = std::env::temp_dir().join("futil_cli_preserved.out");
    std::fs::write(&target, b"previous good output").unwrap();
    // Valid program, runtime failure: the 2-cycle budget times out.
    let out = futil(&[
        file.to_str().unwrap(),
        "-b",
        "sim",
        "--cycles",
        "2",
        "-o",
        target.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert_eq!(
        std::fs::read(&target).unwrap(),
        b"previous good output",
        "failed emission clobbered the existing file"
    );
    let _ = std::fs::remove_file(&target);
}

/// `--cycles` flows through `BackendOpts` to the sim backend: an
/// impossible budget fails, and with a diagnostic quoting the budget.
#[test]
fn cycle_budget_reaches_the_sim_backend() {
    let file = counter();
    let out = futil(&[file.to_str().unwrap(), "-b", "sim", "--cycles", "2"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("2 cycles"), "{}", stderr(&out));
}

/// `--format json` flows through `BackendOpts` to the area backend.
#[test]
fn area_backend_reports_text_and_json() {
    let file = counter();
    let text = futil(&[file.to_str().unwrap(), "-b", "area"]);
    assert_eq!(text.status.code(), Some(0), "{}", stderr(&text));
    assert!(stdout(&text).starts_with("luts "), "{}", stdout(&text));

    let json = futil(&[file.to_str().unwrap(), "-b", "area", "--format", "json"]);
    assert_eq!(json.status.code(), Some(0));
    let body = stdout(&json);
    assert!(body.trim_end().starts_with("{\"luts\":"), "{body}");
    assert!(body.trim_end().ends_with('}'), "{body}");
}
