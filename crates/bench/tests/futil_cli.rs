//! End-to-end tests of the `futil` binary's frontend and backend
//! surfaces: registry-driven `-f`/`-b`, extension-based frontend
//! inference, stdin input, `--fopt` plumbing, caret diagnostics,
//! `--list-frontends`/`--list-backends`, `-o`, pipeline auto-append,
//! and clean precondition failures.

use calyx_backend::BackendRegistry;
use calyx_frontend::FrontendRegistry;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../examples/{name}"))
}

fn counter() -> PathBuf {
    example("counter.futil")
}

fn futil(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_futil"))
        .args(args)
        .output()
        .expect("futil spawns")
}

/// Run futil with `input` piped to stdin (for the `-` input path).
fn futil_stdin(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_futil"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("futil spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("stdin writes");
    child.wait_with_output().expect("futil exits")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// An explicit pipeline that leaves the precondition unmet fails with a
/// clean error — exit 1, no partial output — naming the backend and the
/// missing passes.
#[test]
fn unmet_precondition_is_a_clean_exit_1_with_no_output() {
    let file = counter();
    let out = futil(&[file.to_str().unwrap(), "-b", "verilog", "-p", "none"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(out.stdout.is_empty(), "partial output: {}", stdout(&out));
    let err = stderr(&out);
    assert!(
        err.contains("backend `verilog` precondition failed"),
        "{err}"
    );
    assert!(err.contains("-p lower"), "{err}");
}

/// Unknown backends exit 2 with the registry's message listing the valid
/// choices (derived, not hardcoded).
#[test]
fn unknown_backend_exits_2_listing_registry_choices() {
    let file = counter();
    let out = futil(&[file.to_str().unwrap(), "-b", "verilgo"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    for b in BackendRegistry::default().backends() {
        assert!(err.contains(b.name), "missing `{}` in: {err}", b.name);
    }
}

/// `--list-backends` names every registered backend with its description
/// and required pipeline.
#[test]
fn list_backends_reflects_the_registry() {
    let out = futil(&["--list-backends"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for b in BackendRegistry::default().backends() {
        assert!(text.contains(b.name), "{text}");
        assert!(text.contains(b.description), "{text}");
    }
    assert!(text.contains("[pipeline: lower]"), "{text}");
}

/// The usage text derives its `-b` choices from the registry.
#[test]
fn help_derives_backend_list_from_registry() {
    let out = futil(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let names: Vec<&str> = BackendRegistry::default()
        .backends()
        .iter()
        .map(|b| b.name)
        .collect();
    assert!(
        stdout(&out).contains(&format!("-b {}", names.join("|"))),
        "{}",
        stdout(&out)
    );
}

/// The full smoke matrix: every registered backend accepts the counter
/// with no explicit pipeline (the driver appends the backend's required
/// pipeline) and produces non-empty output.
#[test]
fn every_backend_runs_the_counter_end_to_end() {
    let file = counter();
    for b in BackendRegistry::default().backends() {
        let out = futil(&[file.to_str().unwrap(), "-b", b.name]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "backend `{}`: {}",
            b.name,
            stderr(&out)
        );
        assert!(
            !out.stdout.is_empty(),
            "backend `{}` emitted nothing",
            b.name
        );
    }
}

/// `-o` streams to a file; the bytes match the stdout mode.
#[test]
fn output_file_matches_stdout() {
    let file = counter();
    let via_stdout = futil(&[file.to_str().unwrap(), "-p", "lower", "-b", "verilog"]);
    assert_eq!(via_stdout.status.code(), Some(0));

    let target = std::env::temp_dir().join("futil_cli_counter.sv");
    let _ = std::fs::remove_file(&target);
    let out = futil(&[
        file.to_str().unwrap(),
        "-p",
        "lower",
        "-b",
        "verilog",
        "-o",
        target.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(out.stdout.is_empty(), "stdout not empty with -o");
    let written = std::fs::read(&target).unwrap();
    assert_eq!(written, via_stdout.stdout);
    let _ = std::fs::remove_file(&target);
}

/// A failed emission with `-o` must not destroy an existing output file
/// (emission goes to a temp file renamed into place on success).
#[test]
fn failed_emission_preserves_existing_output_file() {
    let file = counter();
    let target = std::env::temp_dir().join("futil_cli_preserved.out");
    std::fs::write(&target, b"previous good output").unwrap();
    // Valid program, runtime failure: the 2-cycle budget times out.
    let out = futil(&[
        file.to_str().unwrap(),
        "-b",
        "sim",
        "--cycles",
        "2",
        "-o",
        target.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert_eq!(
        std::fs::read(&target).unwrap(),
        b"previous good output",
        "failed emission clobbered the existing file"
    );
    let _ = std::fs::remove_file(&target);
}

/// `--cycles` flows through `BackendOpts` to the sim backend: an
/// impossible budget fails, and with a diagnostic quoting the budget.
#[test]
fn cycle_budget_reaches_the_sim_backend() {
    let file = counter();
    let out = futil(&[file.to_str().unwrap(), "-b", "sim", "--cycles", "2"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("2 cycles"), "{}", stderr(&out));
}

/// `--list-frontends` names every registered frontend with its
/// description, extensions, and `--fopt` keys.
#[test]
fn list_frontends_reflects_the_registry() {
    let out = futil(&["--list-frontends"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for f in FrontendRegistry::default().frontends() {
        assert!(text.contains(f.name), "{text}");
        assert!(text.contains(f.description), "{text}");
        for ext in f.extensions {
            assert!(text.contains(&format!(".{ext}")), "missing .{ext}: {text}");
        }
        for (key, what) in f.options {
            assert!(text.contains(&format!("--fopt {key}")), "{text}");
            assert!(text.contains(what), "{text}");
        }
    }
}

/// The usage text derives its `-f` choices from the registry.
#[test]
fn help_derives_frontend_list_from_registry() {
    let out = futil(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let names: Vec<&str> = FrontendRegistry::default()
        .frontends()
        .iter()
        .map(|f| f.name)
        .collect();
    assert!(
        stdout(&out).contains(&format!("-f {}", names.join("|"))),
        "{}",
        stdout(&out)
    );
}

/// Unknown frontends exit 2 with the registry's message listing the
/// valid choices (derived, not hardcoded).
#[test]
fn unknown_frontend_exits_2_listing_registry_choices() {
    let file = counter();
    let out = futil(&[file.to_str().unwrap(), "-f", "dahlai"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    for f in FrontendRegistry::default().frontends() {
        assert!(err.contains(f.name), "missing `{}` in: {err}", f.name);
    }
}

/// Unknown `--fopt` keys exit 2 naming the frontend and its valid keys.
#[test]
fn unknown_fopt_exits_2_naming_the_frontend() {
    let file = counter();
    let out = futil(&[file.to_str().unwrap(), "--fopt", "rows=2"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("option `rows` for frontend `calyx`"), "{err}");

    let out = futil(&["-", "-f", "systolic", "--fopt", "rosw=2"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("frontend `systolic`"), "{err}");
    assert!(err.contains("rows"), "{err}");

    // A malformed --fopt (no `=`) is also a usage error.
    let out = futil(&[file.to_str().unwrap(), "--fopt", "rows"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("key=value"), "{}", stderr(&out));
}

/// `-f` is inferred from the input's file extension: `.fuse` selects the
/// dahlia frontend, `.systolic` the systolic generator, `.futil` the
/// native parser — and an explicit `-f calyx` matches the default path
/// byte-for-byte.
#[test]
fn frontend_is_inferred_from_the_extension() {
    let fuse = example("dotprod.fuse");
    let out = futil(&[fuse.to_str().unwrap(), "-b", "verilog"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("module main"), "{}", stdout(&out));

    let systolic = example("matmul2x2.systolic");
    let out = futil(&[systolic.to_str().unwrap(), "-b", "verilog"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("module mac_pe"), "{}", stdout(&out));

    let file = counter();
    let inferred = futil(&[file.to_str().unwrap()]);
    let explicit = futil(&[file.to_str().unwrap(), "-f", "calyx"]);
    assert_eq!(inferred.status.code(), Some(0));
    assert_eq!(inferred.stdout, explicit.stdout);
}

/// `-` reads the program from stdin; without `-f` the driver assumes
/// the native parser and prints a hint naming `-f`.
#[test]
fn stdin_input_works_and_hints_at_dash_f() {
    let src = std::fs::read_to_string(counter()).unwrap();
    let via_stdin = futil_stdin(&["-", "-b", "verilog"], &src);
    assert_eq!(via_stdin.status.code(), Some(0), "{}", stderr(&via_stdin));
    assert!(
        stderr(&via_stdin).contains("`-f`"),
        "{}",
        stderr(&via_stdin)
    );

    // Same bytes as reading the file directly.
    let via_file = futil(&[counter().to_str().unwrap(), "-b", "verilog"]);
    assert_eq!(via_stdin.stdout, via_file.stdout);

    // With an explicit -f, stdin feeds any frontend (and no hint).
    let dahlia = std::fs::read_to_string(example("dotprod.fuse")).unwrap();
    let out = futil_stdin(&["-", "-f", "dahlia", "-b", "verilog"], &dahlia);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(!stderr(&out).contains("assuming"), "{}", stderr(&out));
    assert!(stdout(&out).contains("module main"), "{}", stdout(&out));
}

/// Generator frontends run with no source at all: every dimension can
/// arrive via `--fopt` (the acceptance-criteria invocation).
#[test]
fn systolic_frontend_runs_from_fopts_alone() {
    let out = futil_stdin(
        &[
            "-", "-f", "systolic", "--fopt", "rows=2", "--fopt", "cols=2", "--fopt", "inner=2",
            "-b", "sim",
        ],
        "",
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let report = stdout(&out);
    assert!(report.starts_with("done in "), "{report}");
    assert!(report.contains("out = "), "{report}");

    // A missing dimension is an input error (exit 1) telling the user
    // both ways to supply it.
    let out = futil_stdin(&["-", "-f", "systolic", "--fopt", "rows=2"], "");
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("--fopt cols=N"), "{}", stderr(&out));
}

/// The polybench frontend selects kernels by name and honors `n`.
#[test]
fn polybench_frontend_selects_kernels() {
    let out = futil_stdin(
        &[
            "-",
            "-f",
            "polybench",
            "--fopt",
            "kernel=gemm",
            "-b",
            "calyx",
        ],
        "",
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(!out.stdout.is_empty());

    // Unknown kernels list the valid ones.
    let out = futil_stdin(
        &[
            "-",
            "-f",
            "polybench",
            "--fopt",
            "kernel=gmem",
            "-b",
            "calyx",
        ],
        "",
    );
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("gemm"), "{err}");
    assert!(err.contains("trisolv"), "{err}");
}

/// Parse errors render caret diagnostics: file name, line:col, the
/// offending source line, and a `^` under the column.
#[test]
fn parse_errors_render_caret_diagnostics() {
    let dir = std::env::temp_dir().join("futil_cli_caret");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.futil");
    std::fs::write(&bad, "component main() -> () {\n  cells x\n}\n").unwrap();
    let out = futil(&[bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("bad.futil:2:"), "{err}");
    assert!(err.contains("  cells x"), "{err}");
    assert!(
        err.lines().last().unwrap().trim_end().ends_with('^'),
        "{err}"
    );
    let _ = std::fs::remove_file(&bad);

    // Stdin diagnostics are anchored to `<stdin>`.
    let out = futil_stdin(&["-"], "component main( {\n");
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("<stdin>:1:"), "{}", stderr(&out));
}

/// `--format json` flows through `BackendOpts` to the area backend.
#[test]
fn area_backend_reports_text_and_json() {
    let file = counter();
    let text = futil(&[file.to_str().unwrap(), "-b", "area"]);
    assert_eq!(text.status.code(), Some(0), "{}", stderr(&text));
    assert!(stdout(&text).starts_with("luts "), "{}", stdout(&text));

    let json = futil(&[file.to_str().unwrap(), "-b", "area", "--format", "json"]);
    assert_eq!(json.status.code(), Some(0));
    let body = stdout(&json);
    assert!(body.trim_end().starts_with("{\"luts\":"), "{body}");
    assert!(body.trim_end().ends_with('}'), "{body}");
}
