//! End-to-end tests of the `futil --batch` and `futil serve` surfaces:
//! mixed-frontend batches with `--out-dir`, JSON summaries, exit-code
//! aggregation, positioned manifest validation (exit 2), `--fail-fast`
//! skipping, the `--time` per-job table, and the JSON-lines server on a
//! stdin/stdout pipe.

use calyx_service::json;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../examples/{name}"))
}

fn futil(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_futil"))
        .args(args)
        .output()
        .expect("futil spawns")
}

/// Run futil with `input` piped to stdin (manifests from `-`, serve).
fn futil_stdin(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_futil"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("futil spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("stdin writes");
    child.wait_with_output().expect("futil exits")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("futil-batch-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The headline workflow: three inputs, three different frontends (each
/// inferred from its extension), one batch, one JSON summary, one
/// `--out-dir` of `.sv` files.
#[test]
fn mixed_frontend_batch_writes_out_dir_and_a_json_summary() {
    let dir = scratch("mixed");
    let inputs = [
        example("counter.futil"),
        example("dotprod.fuse"),
        example("matmul2x2.systolic"),
    ];
    let out = futil(&[
        "--batch",
        inputs[0].to_str().unwrap(),
        inputs[1].to_str().unwrap(),
        inputs[2].to_str().unwrap(),
        "-b",
        "verilog",
        "--jobs",
        "4",
        "--format",
        "json",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let summary = json::parse(&stdout(&out)).expect("summary is valid JSON");
    assert_eq!(summary.get("jobs").unwrap().as_u64(), Some(3));
    assert_eq!(summary.get("ok").unwrap().as_u64(), Some(3));
    assert_eq!(summary.get("failed").unwrap().as_u64(), Some(0));
    // The verilog backend's extension names the per-job files.
    for name in ["counter.sv", "dotprod.sv", "matmul2x2.sv"] {
        let path = dir.join(name);
        let bytes =
            std::fs::read(&path).unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
        assert!(!bytes.is_empty(), "{name} is empty");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// One bad input does not stop the others (keep-going is the default),
/// but it does turn the exit code to 1 and shows up in the summary.
#[test]
fn a_failing_job_exits_1_but_the_rest_still_compile() {
    let dir = scratch("keep-going");
    let bad = dir.join("broken.futil");
    std::fs::write(&bad, "component main( {").unwrap();
    let out = futil(&[
        "--batch",
        example("counter.futil").to_str().unwrap(),
        bad.to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let summary = json::parse(&stdout(&out)).unwrap();
    assert_eq!(summary.get("ok").unwrap().as_u64(), Some(1));
    assert_eq!(summary.get("failed").unwrap().as_u64(), Some(1));
    let results = summary.get("results").unwrap();
    let broken = &results.as_arr().unwrap()[1];
    assert_eq!(broken.get("status").unwrap().as_str(), Some("error"));
    assert!(broken.get("error").unwrap().as_str().is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--fail-fast` on one worker: the first failure aborts the queue and
/// every unstarted job reports `skipped`, not silence.
#[test]
fn fail_fast_skips_every_job_after_the_first_failure() {
    let dir = scratch("fail-fast");
    let manifest = dir.join("jobs.jsonl");
    let mut lines = String::from("{\"source\": \"component main( {\", \"name\": \"bad\"}\n");
    for i in 0..4 {
        lines.push_str(&format!(
            "{{\"input\": {:?}, \"name\": \"good{i}\"}}\n",
            example("counter.futil")
        ));
    }
    std::fs::write(&manifest, lines).unwrap();
    let out = futil(&[
        "--batch",
        manifest.to_str().unwrap(),
        "--jobs",
        "1",
        "--fail-fast",
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let summary = json::parse(&stdout(&out)).unwrap();
    assert_eq!(summary.get("failed").unwrap().as_u64(), Some(1));
    assert_eq!(summary.get("skipped").unwrap().as_u64(), Some(4));
    let results = summary.get("results").unwrap();
    let skipped = &results.as_arr().unwrap()[2];
    assert_eq!(skipped.get("status").unwrap().as_str(), Some("skipped"));
    assert!(
        skipped
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("--fail-fast"),
        "skips say why"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--time` (or `--stats`) upgrades the text summary with a per-job
/// stage table instead of interleaving timings on stderr.
#[test]
fn time_flag_adds_the_per_job_stage_table() {
    let out = futil(&[
        "--batch",
        example("counter.futil").to_str().unwrap(),
        "--time",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("batch: 1 jobs, 1 ok"), "{text}");
    assert!(text.contains("latency: p50"), "{text}");
    assert!(text.contains("parse cache:"), "{text}");
    // The detail table: a header row and one row naming the job.
    assert!(text.contains("status"), "{text}");
    assert!(text.contains("counter"), "{text}");
}

/// Manifest validation happens before any job runs: an unknown field is
/// a positioned exit-2 error naming the file, line, column, and the
/// valid keys.
#[test]
fn unknown_manifest_field_is_a_positioned_exit_2() {
    let dir = scratch("manifest");
    let manifest = dir.join("jobs.jsonl");
    std::fs::write(&manifest, "{\"input\": \"a.futil\"}\n{\"sorce\": \"x\"}\n").unwrap();
    let out = futil(&["--batch", manifest.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(
        err.contains(&format!("{}:2:", manifest.display())),
        "names the manifest line: {err}"
    );
    assert!(err.contains("unknown key `sorce`"), "{err}");
    assert!(err.contains("valid keys"), "{err}");
    assert!(err.contains("source"), "lists the valid keys: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `list` requests belong to the server; a manifest that smuggles one in
/// is rejected up front.
#[test]
fn list_requests_in_a_manifest_are_rejected() {
    let out = futil_stdin(&["--batch", "-"], "{\"list\": \"frontends\"}\n");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("only valid in serve mode"),
        "{}",
        stderr(&out)
    );
}

/// Batch-only flags outside `--batch`, multiple bare inputs, and `-o`
/// inside `--batch` are all usage errors that say what to do instead.
#[test]
fn batch_flag_misuse_is_an_exit_2_with_a_hint() {
    let counter = example("counter.futil");
    let counter = counter.to_str().unwrap();

    let out = futil(&[counter, "--jobs", "2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("require `--batch`"),
        "{}",
        stderr(&out)
    );

    let out = futil(&[counter, counter]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("multiple inputs require `--batch`"),
        "{}",
        stderr(&out)
    );

    let out = futil(&["--batch", counter, "-o", "out.sv"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--out-dir"), "{}", stderr(&out));

    let out = futil(&["--batch"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("expects input files or `.jsonl` manifests"),
        "{}",
        stderr(&out)
    );
}

/// The server on a stdin/stdout pipe: a listing, a malformed request,
/// and a real job each get exactly one response line, and EOF is a
/// clean exit 0 — the acceptance smoke in test form.
#[test]
fn serve_answers_listings_jobs_and_malformed_requests_then_exits_0() {
    let src = "component main() -> () {
        cells { r = std_reg(8); }
        wires { group g { r.in = 8'd7; r.write_en = 1'd1; g[done] = r.done; } }
        control { g; }
      }";
    let input = format!(
        "{}\nthis is not json\n{{\"source\": {:?}, \"name\": \"pipe\"}}\n",
        r#"{"list": "frontends"}"#, src
    );
    let out = futil_stdin(&["serve", "--jobs", "2"], &input);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "{text}");
    let by_id = |id: u64| {
        lines
            .iter()
            .map(|l| json::parse(l).expect("responses are valid JSON"))
            .find(|v| v.get("id").unwrap().as_u64() == Some(id))
            .unwrap()
    };
    let listing = by_id(0);
    assert_eq!(listing.get("status").unwrap().as_str(), Some("ok"));
    let names: Vec<String> = listing
        .get("items")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|i| i.get("name").unwrap().as_str().unwrap().to_string())
        .collect();
    assert!(names.contains(&"calyx".to_string()), "{names:?}");

    let bad = by_id(1);
    assert_eq!(bad.get("status").unwrap().as_str(), Some("error"));
    assert!(
        bad.get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("bad request:"),
        "{text}"
    );

    let job = by_id(2);
    assert_eq!(job.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(job.get("name").unwrap().as_str(), Some("pipe"));
    assert!(
        job.get("output")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("component main"),
        "inline output streams back"
    );
}

/// Serve-side usage errors still exit 2: `--max-connections` is
/// meaningless without `--socket`.
#[test]
fn serve_max_connections_without_socket_is_an_exit_2() {
    let out = futil_stdin(&["serve", "--max-connections", "1"], "");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--socket"), "{}", stderr(&out));
}
