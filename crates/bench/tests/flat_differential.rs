//! Differential suite pinning the flat arena-indexed engines to the
//! pre-flatten tree-walking engines they replaced.
//!
//! The legacy interpreter and RTL simulator survive verbatim in
//! `calyx_sim::legacy` as oracles. For every PolyBench kernel this suite
//! runs legacy and flat side by side — the interpreter on the un-lowered
//! control tree, the RTL engine on both the `lower` and `lower-static`
//! pipelines — with identical deterministic memory images, and requires
//! **byte-identical** state reports and **equal cycle counts**. Any
//! divergence in fixpoint semantics, done-observation protection, control
//! sequencing, or primitive models introduced by the flattening rewrite
//! shows up here as a diff, not as a silently-wrong benchmark number.

use calyx_core::ir::Context;
use calyx_core::passes::PassManager;
use calyx_dahlia::ast::Program;
use calyx_dahlia::backend::{memory_banks, split_banks};
use calyx_polybench::{compile_kernel, input_data, logical_of, KernelDef, KERNELS};
use calyx_sim::{write_state_report, RunStats, StateSource};

/// Generous cycle budget — every n=4 kernel finishes orders of magnitude
/// sooner, and a hang in either engine should time out, not wedge CI.
const BUDGET: u64 = 100_000_000;

/// The deterministic physical-memory image for a compiled kernel: the
/// same per-bank data `calyx_polybench::simulate` loads, so differential
/// runs exercise the kernels on their real inputs (non-zero divisors,
/// live datapaths) rather than all-zero memories.
fn memory_image(def: &KernelDef, ast: &Program) -> Vec<(String, Vec<u64>)> {
    let mut image = Vec::new();
    for decl in &ast.decls {
        let lname = logical_of(decl.name.as_str());
        let data = input_data(def.name, &lname, decl.size() as usize);
        let banks = split_banks(decl, &data);
        for ((bank_name, _), bank_data) in memory_banks(decl).iter().zip(&banks) {
            image.push((bank_name.clone(), bank_data.clone()));
        }
    }
    image
}

/// Render the run the way `futil -b sim`/`-b interp` would: the cycle
/// count plus every stateful cell. Byte-comparing this string is the
/// "state reports agree" check.
fn render(src: &dyn StateSource, ctx: &Context, stats: RunStats) -> String {
    let mut buf = Vec::new();
    write_state_report(src, ctx.entry().unwrap(), stats, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

/// Outcome of one engine run: cycles + rendered report, or the rendered
/// error. Errors participate in the differential too — if the legacy
/// engine rejects a program, the flat engine must reject it the same way.
type Outcome = Result<(u64, String), String>;

fn flat_interp(ctx: &Context, image: &[(String, Vec<u64>)]) -> Outcome {
    let mut interp = calyx_sim::interp::Interpreter::new(ctx, "main").map_err(|e| e.to_string())?;
    for (name, data) in image {
        interp.set_memory(name, data).map_err(|e| e.to_string())?;
    }
    let stats = interp.run(BUDGET).map_err(|e| e.to_string())?;
    Ok((stats.cycles, render(&interp, ctx, stats)))
}

fn legacy_interp(ctx: &Context, image: &[(String, Vec<u64>)]) -> Outcome {
    let mut interp =
        calyx_sim::legacy::interp::Interpreter::new(ctx, "main").map_err(|e| e.to_string())?;
    for (name, data) in image {
        interp.set_memory(name, data).map_err(|e| e.to_string())?;
    }
    let stats = interp.run(BUDGET).map_err(|e| e.to_string())?;
    Ok((stats.cycles, render(&interp, ctx, stats)))
}

fn flat_rtl(ctx: &Context, image: &[(String, Vec<u64>)]) -> Outcome {
    let mut sim = calyx_sim::rtl::Simulator::new(ctx, "main").map_err(|e| e.to_string())?;
    for (name, data) in image {
        sim.set_memory(&[name], data).map_err(|e| e.to_string())?;
    }
    let stats = sim.run(BUDGET).map_err(|e| e.to_string())?;
    Ok((stats.cycles, render(&sim, ctx, stats)))
}

fn legacy_rtl(ctx: &Context, image: &[(String, Vec<u64>)]) -> Outcome {
    let mut sim = calyx_sim::legacy::rtl::Simulator::new(ctx, "main").map_err(|e| e.to_string())?;
    for (name, data) in image {
        sim.set_memory(&[name], data).map_err(|e| e.to_string())?;
    }
    let stats = sim.run(BUDGET).map_err(|e| e.to_string())?;
    Ok((stats.cycles, render(&sim, ctx, stats)))
}

/// Assert two outcomes match byte-for-byte, with a kernel-labelled diff.
fn assert_agree(kernel: &str, stage: &str, legacy: &Outcome, flat: &Outcome) {
    match (legacy, flat) {
        (Ok((lc, lr)), Ok((fc, fr))) => {
            assert_eq!(
                lc, fc,
                "{kernel} [{stage}]: cycle counts diverge (legacy {lc}, flat {fc})"
            );
            assert_eq!(
                lr, fr,
                "{kernel} [{stage}]: state reports diverge\n--- legacy ---\n{lr}\n--- flat ---\n{fr}"
            );
        }
        (Err(le), Err(fe)) => {
            assert_eq!(le, fe, "{kernel} [{stage}]: error messages diverge");
        }
        (l, f) => panic!("{kernel} [{stage}]: outcomes diverge\nlegacy: {l:?}\nflat: {f:?}"),
    }
}

/// The interpreter differential: every kernel, un-lowered, on the control
/// tree both engines execute directly.
#[test]
fn interpreter_matches_legacy_on_every_kernel() {
    for def in KERNELS {
        let (ast, ctx) = compile_kernel(def, 4, 1).unwrap();
        let image = memory_image(def, &ast);
        let legacy = legacy_interp(&ctx, &image);
        let flat = flat_interp(&ctx, &image);
        assert!(
            matches!(legacy, Ok((c, _)) if c > 0),
            "{}: legacy interp did not complete: {legacy:?}",
            def.name
        );
        assert_agree(def.name, "interp", &legacy, &flat);
    }
}

/// The RTL differential over the standard `lower` pipeline.
#[test]
fn rtl_matches_legacy_on_every_kernel_lowered() {
    for def in KERNELS {
        let (ast, mut ctx) = compile_kernel(def, 4, 1).unwrap();
        PassManager::from_names(&["lower"])
            .unwrap()
            .run(&mut ctx)
            .unwrap();
        let image = memory_image(def, &ast);
        let legacy = legacy_rtl(&ctx, &image);
        let flat = flat_rtl(&ctx, &image);
        assert!(
            matches!(legacy, Ok((c, _)) if c > 0),
            "{}: legacy rtl did not complete: {legacy:?}",
            def.name
        );
        assert_agree(def.name, "lower", &legacy, &flat);
    }
}

/// The RTL differential over `lower-static` — static timing produces a
/// different FSM structure, so it exercises different assignment/guard
/// shapes than the dynamic pipeline.
#[test]
fn rtl_matches_legacy_on_every_kernel_lowered_static() {
    for def in KERNELS {
        let (ast, mut ctx) = compile_kernel(def, 4, 1).unwrap();
        PassManager::from_names(&["lower-static"])
            .unwrap()
            .run(&mut ctx)
            .unwrap();
        let image = memory_image(def, &ast);
        let legacy = legacy_rtl(&ctx, &image);
        let flat = flat_rtl(&ctx, &image);
        assert!(
            matches!(legacy, Ok((c, _)) if c > 0),
            "{}: legacy rtl (static) did not complete: {legacy:?}",
            def.name
        );
        assert_agree(def.name, "lower-static", &legacy, &flat);
    }
}

/// The engines must also agree on *failing* programs: a driver conflict
/// is reported identically (same error text, same conflicting port) by
/// legacy and flat RTL simulators.
#[test]
fn rtl_agrees_with_legacy_on_driver_conflicts() {
    let src = r#"
        component main() -> () {
          cells { w = std_wire(8); }
          wires {
            w.in = 8'd1;
            w.in = 8'd2;
            done = go ? 1'd1;
          }
          control {}
        }
    "#;
    let ctx = calyx_core::ir::parse_context(src).unwrap();
    let legacy = legacy_rtl(&ctx, &[]);
    let flat = flat_rtl(&ctx, &[]);
    assert!(
        legacy.is_err(),
        "conflict not detected by legacy: {legacy:?}"
    );
    assert_agree("driver-conflict", "lowered", &legacy, &flat);
}
