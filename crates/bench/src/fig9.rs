//! Figure 9: ablation of the optimization passes on PolyBench.
//!
//! - **9a**: LUT change from resource sharing, register sharing, and both,
//!   normalized to a baseline with both disabled (the paper finds sharing
//!   can *increase* LUTs — +3% / +11% on average — because of the
//!   multiplexers it introduces).
//! - **9b**: register decrease factor from register sharing (paper: 12%
//!   average reduction, opportunities in every benchmark).
//! - **9c**: simulated cycle speedup from latency-sensitive compilation
//!   (paper: 1.43× average, no significant area change).
//!
//! Every configuration is simulated and verified against the reference
//! semantics, so the ablations double as a correctness matrix for the
//! optimization passes.

use calyx_backend::area::{self, Area};
use calyx_core::errors::CalyxResult;
use calyx_polybench::{simulate, KernelDef, PipelineConfig, KERNELS};

/// Per-kernel ablation results.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Kernel abbreviation.
    pub abbrev: &'static str,
    /// Baseline (both sharing passes off): area.
    pub baseline: Area,
    /// Resource sharing only.
    pub resource_sharing: Area,
    /// Register sharing only.
    pub register_sharing: Area,
    /// Both sharing passes.
    pub both: Area,
    /// Cycles with latency-insensitive compilation only.
    pub dynamic_cycles: u64,
    /// Cycles with latency-sensitive compilation.
    pub static_cycles: u64,
}

impl Fig9Row {
    /// Fig 9a series: LUT factor relative to baseline.
    pub fn lut_factor_rs(&self) -> f64 {
        self.resource_sharing.luts as f64 / self.baseline.luts as f64
    }

    /// Fig 9a series: register-sharing LUT factor.
    pub fn lut_factor_mr(&self) -> f64 {
        self.register_sharing.luts as f64 / self.baseline.luts as f64
    }

    /// Fig 9a series: both passes.
    pub fn lut_factor_both(&self) -> f64 {
        self.both.luts as f64 / self.baseline.luts as f64
    }

    /// Fig 9b: register decrease factor (baseline / shared; ≥ 1 is a win).
    pub fn register_decrease(&self) -> f64 {
        self.baseline.register_cells as f64 / self.register_sharing.register_cells as f64
    }

    /// Fig 9c: speedup from static compilation.
    pub fn static_speedup(&self) -> f64 {
        self.dynamic_cycles as f64 / self.static_cycles as f64
    }
}

fn area_of(def: &KernelDef, n: u64, cfg: PipelineConfig) -> CalyxResult<(Area, u64)> {
    let run = simulate(def, n, 1, cfg)?;
    Ok((area::estimate(&run.lowered, "main")?, run.cycles))
}

/// Run the full ablation for one kernel.
///
/// # Errors
///
/// Propagates compilation/verification failures.
pub fn run_kernel(def: &KernelDef, n: u64) -> CalyxResult<Fig9Row> {
    let cfg = |rs: bool, mr: bool, st: bool| PipelineConfig {
        resource_sharing: rs,
        minimize_regs: mr,
        static_timing: st,
    };
    let (baseline, dynamic_cycles) = area_of(def, n, cfg(false, false, false))?;
    let (resource_sharing, _) = area_of(def, n, cfg(true, false, false))?;
    let (register_sharing, _) = area_of(def, n, cfg(false, true, false))?;
    let (both, _) = area_of(def, n, cfg(true, true, false))?;
    let (_, static_cycles) = area_of(def, n, cfg(false, false, true))?;
    Ok(Fig9Row {
        abbrev: def.abbrev,
        baseline,
        resource_sharing,
        register_sharing,
        both,
        dynamic_cycles,
        static_cycles,
    })
}

/// Compute Figure 9 over the suite.
///
/// # Errors
///
/// Propagates the first failing kernel.
pub fn compute(n: u64) -> CalyxResult<Vec<Fig9Row>> {
    KERNELS.iter().map(|def| run_kernel(def, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use calyx_polybench::kernel;

    #[test]
    fn static_compilation_speeds_up_kernels() {
        for name in ["gemm", "trisolv"] {
            let row = run_kernel(kernel(name).unwrap(), 4).unwrap();
            assert!(
                row.static_speedup() > 1.0,
                "{name}: {} -> {}",
                row.dynamic_cycles,
                row.static_cycles
            );
        }
    }

    #[test]
    fn register_sharing_reduces_registers() {
        let row = run_kernel(kernel("gemm").unwrap(), 4).unwrap();
        assert!(
            row.register_sharing.register_cells <= row.baseline.register_cells,
            "{row:?}"
        );
        assert!(row.register_decrease() >= 1.0);
    }

    #[test]
    fn sharing_changes_luts_moderately() {
        // The paper's point: sharing's LUT effect is small and can go
        // either direction (mux overhead vs. unit savings).
        let row = run_kernel(kernel("mvt").unwrap(), 4).unwrap();
        for f in [
            row.lut_factor_rs(),
            row.lut_factor_mr(),
            row.lut_factor_both(),
        ] {
            assert!(f > 0.5 && f < 2.0, "LUT factor {f}: {row:?}");
        }
    }
}
