//! A `futil`-style command-line driver for the Calyx compiler, mirroring
//! the artifact's binary (paper appendix A) — now the paper's full
//! workflow: a *frontend* selected from the `FrontendRegistry` with `-f`
//! ingests the input (generator → IR), a pass pipeline built from `-p`
//! flags compiles it, and a backend selected from the `BackendRegistry`
//! with `-b` emits the result.
//!
//! ```text
//! futil <file|-> [flags]
//! futil <inputs...> --batch [--jobs N] [--fail-fast] [--timeout MS]
//!                   [--out-dir DIR] [shared flags]
//! futil serve [--jobs N] [--timeout MS] [--socket PATH]
//!             [--max-connections N] [shared flags]
//! futil check <file|-> [-f <frontend>] [--fopt k=v] [--format text|json]
//!                      [--deny warnings|<lint>] [--allow <lint>]
//! futil check --explain <CODE>
//! futil build <file|-> --to <state> [--from <state>] [-o <file>]
//!                      [--cache-dir DIR] [--no-cache] [--fopt k=v]
//!                      [--cycles N] [--format text|json]
//! futil plan <file|->  --to <state> [--from <state>]
//!   -f <frontend>       frontend (default: inferred from the file
//!                       extension, falling back to calyx); see
//!                       --list-frontends
//!   --fopt key=value    frontend/generator parameter (repeatable); see
//!                       --list-frontends for each frontend's keys
//!   -p <pass-or-alias>  append a pass or pipeline alias (repeatable;
//!                       default: the backend's required pipeline).
//!   -b <backend>        backend (default: calyx); see --list-backends
//!   -o <file>           write the backend's output to <file>
//!                       (default: stdout)
//!   --cycles N          simulation budget (default 1_000_000)
//!   --format text|json  report format for report-style backends and
//!                       for `futil check`
//!   --check             run every lint before compiling; diagnostics go
//!                       to stderr and errors stop the run
//!   --deny warnings     treat warning diagnostics as fatal
//!   --deny <lint>       promote one lint's findings to errors
//!                       (repeatable; `futil check` only)
//!   --allow <lint>      drop one lint's findings entirely
//!                       (repeatable; `futil check` only)
//!   --explain <CODE>    print a lint's long-form documentation and exit
//!                       (`futil check` only; no input file needed)
//!   --time              report per-pass wall-clock timings on stderr;
//!                       simulation backends also report total cycles,
//!                       wall time, and cycles/sec
//!   --stats             report per-pass analysis-cache statistics
//!                       (hits/misses/recomputes) on stderr, plus the
//!                       simulation throughput line
//!   --batch             compile every positional input concurrently:
//!                       plain inputs become one job each, `.jsonl`
//!                       arguments are JSON-lines job manifests (`-`
//!                       reads a manifest from stdin), and the other
//!                       flags become per-job defaults. Prints a
//!                       throughput/latency summary (`--format json`
//!                       for the machine-readable one; `--time`/
//!                       `--stats` add the per-job stage table) and
//!                       exits 1 if any job failed.
//!   --jobs N            worker threads for --batch and serve
//!                       (default: available parallelism)
//!   --fail-fast         abort a batch at the first failing job;
//!                       unstarted jobs report status `skipped`
//!   --timeout MS        per-job wall-clock budget in milliseconds
//!   --out-dir DIR       write each job's output to DIR/<name>.<ext>
//!                       (ext from the backend; see `futil serve` docs)
//!   --list-frontends    list registered frontends, then exit
//!   --list-passes       list registered passes and aliases, then exit
//!   --list-backends     list registered backends, then exit
//!   --list-lints        list registered lints, then exit
//!   -h, --help          print usage and exit
//! ```
//!
//! All four lists — and the `-f`/`-b` choices in the usage text — are
//! derived from the registries, so help can never drift from what is
//! registered. `-` as the input path reads from stdin. Parse errors are
//! rendered as caret diagnostics pointing into the offending source
//! line.
//!
//! `futil check` runs the `LintRegistry` instead of compiling: every
//! finding is reported at once (caret-annotated text, or `--format json`
//! for the schema-stable report), and the exit status is 1 when any
//! error-severity diagnostic — or, under `--deny warnings`, any
//! diagnostic at all — was produced.
//!
//! `futil build` inverts the imperative `-f`/`-p`/`-b` interface: the
//! input's *state* is inferred from its extension (or named with
//! `--from`), the goal is named with `--to`, and the `calyx_plan` route
//! planner finds the cheapest op sequence between the two. Each step
//! runs through a content-addressed artifact cache (default
//! `.futil-cache/`), so a warm rebuild executes zero steps and an edit
//! re-runs only what it invalidates; per-step `ran`/`cached` status
//! lines go to stderr. `futil plan` prints the route without running
//! it (it accepts the build flags and ignores the execution-only
//! ones), and `--list-states`/`--list-ops` print the graph. Unknown
//! or unreachable states are usage errors (exit 2) listing the valid
//! or reachable states.
//!
//! `futil --batch` and `futil serve` are thin shells over the
//! `calyx_service` crate: a shared parse cache, a `std::thread` worker
//! pool, and the JSON-lines protocol documented in the README. Serve
//! reads one request per line from stdin (or a `--socket` unix socket)
//! and streams one response per line as jobs complete; EOF shuts it
//! down cleanly. A malformed request or a panicking job produces a
//! structured error response — the server itself survives.
//!
//! Example (no Calyx source in sight — generator straight to RTL):
//!
//! ```sh
//! cargo run -p calyx_bench --bin futil -- - -f systolic \
//!   --fopt rows=2 --fopt cols=2 --fopt inner=2 -b verilog < /dev/null
//! ```

use calyx_backend::{BackendOpts, BackendRegistry, ReportFormat};
use calyx_core::analysis::AnalysisCache;
use calyx_core::lint::LintRegistry;
use calyx_core::passes::{PassManager, PassRegistry};
use calyx_frontend::{DynFrontend, FrontendOpts, FrontendRegistry};
use calyx_service::{CompileService, JobDefaults, JobRequest, Request, ServeOpts, WorkerPool};
use std::io::{Read, Write};
use std::path::Path;
use std::process::exit;

/// The usage text, with the frontend and backend lists derived from the
/// registries.
fn usage(frontends: &FrontendRegistry, backends: &BackendRegistry) -> String {
    let fnames: Vec<&str> = frontends.frontends().iter().map(|f| f.name).collect();
    let bnames: Vec<&str> = backends.backends().iter().map(|b| b.name).collect();
    format!(
        "usage: futil <file|-> [flags]
       futil <inputs...> --batch [--jobs N] [--fail-fast] [--timeout MS] \
[--out-dir DIR]
       futil serve [--jobs N] [--timeout MS] [--socket PATH] \
[--max-connections N]
       futil check <file|-> [-f <frontend>] [--fopt k=v] \
[--format text|json] [--deny warnings|<lint>] [--allow <lint>]
       futil check --explain <CODE>
       futil build <file|-> --to <state> [--from <state>] [-o <file>] \
[--cache-dir DIR] [--no-cache]
       futil plan <file|-> --to <state> [--from <state>]
  -f {}
                      frontend (default: inferred from the file
                      extension, falling back to calyx); run
                      --list-frontends for descriptions and options
  --fopt key=value    frontend/generator parameter (repeatable); run
                      --list-frontends for each frontend's keys
  -p <pass-or-alias>  append a pass or pipeline alias to the pipeline
                      (repeatable; default: the backend's required
                      pipeline). Run --list-passes for the full registry.
  -b {}
                      backend (default: calyx); run --list-backends for
                      descriptions and required pipelines
  -o <file>           write the backend's output to <file>
                      (default: stdout)
  --cycles N          simulation budget (default 1_000_000)
  --format text|json  report format for report-style backends and for
                      `futil check`
  --check             run every lint before compiling; diagnostics go to
                      stderr and error-severity findings stop the run
  --deny warnings     treat warning diagnostics as fatal
  --deny <lint>       promote one lint's findings to errors (repeatable;
                      `futil check` only)
  --allow <lint>      drop one lint's findings entirely (repeatable;
                      `futil check` only)
  --explain <CODE>    print a lint's long-form documentation and exit
                      (`futil check` only; accepts a code or a name)
  --time              report per-pass wall-clock timings on stderr;
                      simulation backends also report total cycles, wall
                      time, and cycles/sec
  --stats             report per-pass analysis-cache statistics
                      (hits/misses/recomputes) on stderr, plus the
                      simulation throughput line
  --batch             compile every positional input concurrently: plain
                      inputs are one job each, `.jsonl` arguments are
                      JSON-lines job manifests (`-` reads a manifest
                      from stdin), other flags become per-job defaults.
                      Prints a summary (--format json for the machine-
                      readable one) and exits 1 if any job failed.
  --jobs N            worker threads for --batch and serve (default:
                      available parallelism)
  --fail-fast         abort a batch at the first failing job
  --timeout MS        per-job wall-clock budget in milliseconds
  --out-dir DIR       write each job's output to DIR/<name>.<ext>
  --to <state>        goal state for `futil build`/`futil plan`; run
                      `futil build --list-states` for the choices
  --from <state>      start state (default: inferred from the input's
                      file extension)
  --cache-dir DIR     artifact cache for `futil build`
                      (default: .futil-cache)
  --no-cache          run every build step; neither read nor write the
                      artifact cache
  --list-states       list plan states, then exit (build/plan)
  --list-ops          list plan ops, then exit (build/plan)
  --list-frontends    list registered frontends, then exit
  --list-passes       list registered passes and aliases, then exit
  --list-backends     list registered backends, then exit
  --list-lints        list registered lints, then exit
  -h, --help          print this message and exit
",
        fnames.join("|"),
        bnames.join("|")
    )
}

/// A *user error* in the invocation (not in the input program): print the
/// message and the usage text to stderr and exit 2.
fn usage_error(frontends: &FrontendRegistry, backends: &BackendRegistry, msg: &str) -> ! {
    eprintln!("futil: {msg}");
    eprint!("{}", usage(frontends, backends));
    exit(2);
}

/// The shared two-column row every `--list-*` flag prints: a name padded
/// to a fixed width, then its description. Callers append bracketed
/// extras (extensions, pipelines, codes) after the row.
fn list_row(name: &str, description: &str) -> String {
    format!("  {name:<22}{description}")
}

fn list_frontends(frontends: &FrontendRegistry) {
    println!("frontends:");
    for f in frontends.frontends() {
        let exts = if f.extensions.is_empty() {
            String::new()
        } else {
            format!(
                " [extensions: {}]",
                f.extensions
                    .iter()
                    .map(|e| format!(".{e}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            )
        };
        println!("{}{}", list_row(f.name, f.description), exts);
        for (key, what) in f.options {
            println!("    --fopt {key:<15}{what}");
        }
    }
}

fn list_passes() {
    let registry = PassRegistry::default();
    println!("passes:");
    for pass in registry.passes() {
        println!("{}", list_row(pass.name, pass.description));
    }
    println!("\naliases:");
    for (alias, expansion) in registry.aliases() {
        println!("{}", list_row(alias, &expansion.join(" -> ")));
    }
}

fn list_backends(backends: &BackendRegistry) {
    println!("backends:");
    for b in backends.backends() {
        let required = b.required_pipeline;
        let pipeline = if required.is_empty() {
            String::new()
        } else {
            format!(" [pipeline: {}]", required.join(" -> "))
        };
        println!("{}{}", list_row(b.name, b.description), pipeline);
    }
}

fn list_lints() {
    let registry = LintRegistry::default();
    println!("lints:");
    for l in registry.lints() {
        println!(
            "{} [{}, {}]",
            list_row(l.name, l.description),
            l.code,
            l.severity
        );
    }
}

/// Read the input program (`-` reads stdin), exiting 1 on I/O failure.
fn read_input(file: &str) -> String {
    if file == "-" {
        let mut s = String::new();
        match std::io::stdin().read_to_string(&mut s) {
            Ok(_) => s,
            Err(e) => {
                eprintln!("futil: cannot read stdin: {e}");
                exit(1);
            }
        }
    } else {
        match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("futil: cannot read `{file}`: {e}");
                exit(1);
            }
        }
    }
}

/// Render a cycles-per-second rate with a metric suffix (`412`,
/// `3.21K`, `1.07M`, …) for the `--time`/`--stats` throughput line.
fn human_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}K", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

/// The input name shown in diagnostics.
fn shown_name(file: &str) -> &str {
    if file == "-" {
        "<stdin>"
    } else {
        file
    }
}

/// Resolve the frontend name through the registry's shared rule
/// (explicit `-f`, else extension inference, else the native parser) —
/// the same helper the batch/serve engine and the plan graph use, so
/// the three can never diverge. Prints a hint when the fallback fired,
/// since that choice is a guess.
fn resolve_frontend_name<'a>(
    frontends: &'a FrontendRegistry,
    explicit: Option<&'a str>,
    file: &str,
) -> &'a str {
    let (name, fell_back) = frontends.resolve_name(explicit, Some(file));
    if fell_back {
        if file == "-" {
            eprintln!("futil: note: reading from stdin; assuming `-f calyx` (pass `-f` to choose)");
        } else {
            eprintln!(
                "futil: note: no frontend claims `{file}`'s extension; assuming `-f calyx` \
                 (pass `-f` to choose)"
            );
        }
    }
    name
}

/// Parse `src` with `frontend`, rendering parse errors as caret
/// diagnostics and exiting 1 on failure.
fn parse_input(frontend: &dyn DynFrontend, file: &str, src: &str) -> calyx_core::ir::Context {
    match frontend.parse(src) {
        Ok(c) => c,
        Err(e) => {
            // Parse errors point into the source: file, line, column,
            // the offending line, and a caret under the column.
            match e.caret_diagnostic(shown_name(file), src) {
                Some(diagnostic) => eprintln!("futil: {diagnostic}"),
                None => eprintln!("futil: frontend `{}`: {e}", frontend.name()),
            }
            exit(1);
        }
    }
}

/// The `futil check --explain <CODE>` mode: print one lint's long-form
/// documentation (looked up by code or name) and exit 0; unknown lints
/// exit 2 listing every valid code.
fn explain_lint(query: &str) -> ! {
    let registry = LintRegistry::default();
    match registry
        .lints()
        .iter()
        .find(|l| l.code == query || l.name == query)
    {
        Some(lint) => {
            println!("{}: {} ({})", lint.code, lint.name, lint.severity);
            println!("\n{}", lint.description);
            println!("\n{}", lint.explanation);
            exit(0);
        }
        None => {
            let codes: Vec<String> = registry
                .lints()
                .iter()
                .map(|l| format!("{} ({})", l.code, l.name))
                .collect();
            eprintln!(
                "futil: no lint with code or name `{query}`; valid codes: {}",
                codes.join(", ")
            );
            exit(2);
        }
    }
}

/// The `futil check` subcommand: run every registered lint, report every
/// finding, exit 1 when the program should not be compiled as-is.
fn run_check(frontends: &FrontendRegistry, backends: &BackendRegistry, args: Vec<String>) -> ! {
    let mut file = None;
    let mut frontend_name: Option<String> = None;
    let mut fopts = FrontendOpts::default();
    let mut format = ReportFormat::Text;
    let mut deny_warnings = false;
    let mut allow: Vec<String> = Vec::new();
    let mut deny: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-f" => match it.next() {
                Some(f) => frontend_name = Some(f),
                None => usage_error(frontends, backends, "`-f` expects a frontend name"),
            },
            "--fopt" => match it.next() {
                Some(f) => {
                    if let Err(e) = fopts.push_flag(&f) {
                        eprintln!("futil: {e}");
                        exit(2);
                    }
                }
                None => usage_error(frontends, backends, "`--fopt` expects `key=value`"),
            },
            "--format" => {
                format = match it.next().as_deref() {
                    Some("text") => ReportFormat::Text,
                    Some("json") => ReportFormat::Json,
                    _ => usage_error(frontends, backends, "`--format` expects `text` or `json`"),
                }
            }
            "--deny" => match it.next() {
                Some(what) if what == "warnings" => deny_warnings = true,
                Some(what) => deny.push(what),
                None => usage_error(
                    frontends,
                    backends,
                    "`--deny` expects `warnings` or a lint name",
                ),
            },
            "--allow" => match it.next() {
                Some(what) => allow.push(what),
                None => usage_error(frontends, backends, "`--allow` expects a lint name"),
            },
            "--explain" => match it.next() {
                Some(query) => explain_lint(&query),
                None => usage_error(frontends, backends, "`--explain` expects a lint code"),
            },
            "--list-lints" => {
                list_lints();
                exit(0);
            }
            "-h" | "--help" => {
                print!("{}", usage(frontends, backends));
                exit(0);
            }
            "-" if file.is_none() => file = Some("-".to_string()),
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            other => usage_error(
                frontends,
                backends,
                &format!("unexpected argument `{other}` for `futil check`"),
            ),
        }
    }
    let Some(file) = file else {
        usage_error(frontends, backends, "no input file");
    };
    // Validate lint names before touching the input: a typo in `--allow`
    // or `--deny` is a usage error listing the valid lints.
    let registry = LintRegistry::default();
    for name in allow.iter().chain(deny.iter()) {
        if let Err(e) = registry.get(name) {
            eprintln!("futil: {e}");
            exit(2);
        }
    }
    let resolved = resolve_frontend_name(frontends, frontend_name.as_deref(), &file);
    let frontend = match frontends.get(resolved, &fopts) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("futil: {e}");
            exit(2);
        }
    };
    let src = read_input(&file);
    let ctx = parse_input(frontend.as_ref(), &file, &src);
    let mut sink = registry.check_all(&ctx, &mut AnalysisCache::new());
    sink.apply_lint_levels(&allow, &deny);
    match format {
        ReportFormat::Text => {
            // A clean check prints nothing.
            let rendered = sink.render_text(shown_name(&file), &src);
            if !rendered.is_empty() {
                println!("{rendered}");
            }
        }
        ReportFormat::Json => println!("{}", sink.render_json(shown_name(&file))),
    }
    let failing = sink.errors() > 0 || (deny_warnings && !sink.is_empty());
    exit(i32::from(failing));
}

fn list_states(graph: &calyx_plan::PlanGraph) {
    println!("states:");
    for s in graph.states() {
        let exts = if s.extensions.is_empty() {
            String::new()
        } else {
            format!(
                " [extensions: {}]",
                s.extensions
                    .iter()
                    .map(|e| format!(".{e}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            )
        };
        println!("{}{}", list_row(&s.name, &s.description), exts);
    }
}

fn list_ops(graph: &calyx_plan::PlanGraph) {
    println!("ops:");
    for op in graph.ops() {
        println!(
            "{} [{} -> {}]",
            list_row(op.name(), op.description()),
            graph.state(op.from()).name,
            graph.state(op.to()).name
        );
    }
}

/// The `futil build` and `futil plan` subcommands: route from the
/// input's state to `--to` over the standard plan graph, then (for
/// `build`) execute the route through the artifact cache. `plan`
/// accepts the same flags and ignores the execution-only ones, so an
/// invocation can be dry-run by swapping the subcommand name.
fn run_build(
    frontends: &FrontendRegistry,
    backends: &BackendRegistry,
    args: Vec<String>,
    execute_route: bool,
) -> ! {
    let graph = calyx_plan::derive::standard();
    let mut file: Option<String> = None;
    let mut to_name: Option<String> = None;
    let mut from_name: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut build = calyx_plan::BuildOpts::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--to" => match it.next() {
                Some(s) => to_name = Some(s),
                None => usage_error(frontends, backends, "`--to` expects a state name"),
            },
            "--from" => match it.next() {
                Some(s) => from_name = Some(s),
                None => usage_error(frontends, backends, "`--from` expects a state name"),
            },
            "-o" => match it.next() {
                Some(o) => out_path = Some(o),
                None => usage_error(frontends, backends, "`-o` expects a file path"),
            },
            "--cache-dir" => match it.next() {
                Some(d) => build.cache_dir = d.into(),
                None => usage_error(frontends, backends, "`--cache-dir` expects a directory"),
            },
            "--no-cache" => build.use_cache = false,
            "--fopt" => match it.next() {
                Some(f) => match f.split_once('=') {
                    Some((k, v)) if !k.is_empty() => {
                        build.opts.fopts.push((k.to_string(), v.to_string()));
                    }
                    _ => usage_error(
                        frontends,
                        backends,
                        &format!("`--fopt` argument `{f}`; expected `key=value`"),
                    ),
                },
                None => usage_error(frontends, backends, "`--fopt` expects `key=value`"),
            },
            "--cycles" => match it.next().map(|s| s.parse()) {
                Some(Ok(n)) => build.opts.cycles = n,
                _ => usage_error(frontends, backends, "`--cycles` expects a number"),
            },
            "--format" => match it.next().as_deref() {
                Some("text") => build.opts.format = ReportFormat::Text,
                Some("json") => build.opts.format = ReportFormat::Json,
                _ => usage_error(frontends, backends, "`--format` expects `text` or `json`"),
            },
            "--list-states" => {
                list_states(&graph);
                exit(0);
            }
            "--list-ops" => {
                list_ops(&graph);
                exit(0);
            }
            "-h" | "--help" => {
                print!("{}", usage(frontends, backends));
                exit(0);
            }
            "-" if file.is_none() => file = Some("-".to_string()),
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            other => usage_error(
                frontends,
                backends,
                &format!(
                    "unexpected argument `{other}` for `futil {}`",
                    if execute_route { "build" } else { "plan" }
                ),
            ),
        }
    }
    let Some(file) = file else {
        usage_error(frontends, backends, "no input file");
    };
    let Some(to_name) = to_name else {
        usage_error(
            frontends,
            backends,
            "`--to <state>` is required; run `--list-states` for the choices",
        );
    };
    // Unknown `--to`/`--from` states get the graph's message listing
    // every valid state — same contract as the other registries.
    let to = match graph.expect_state(&to_name) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("futil: {e}");
            exit(2);
        }
    };
    let from = match &from_name {
        Some(name) => match graph.expect_state(name) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("futil: {e}");
                exit(2);
            }
        },
        None => match graph.infer_state(&file) {
            Some(s) => s,
            None => {
                eprintln!(
                    "futil: cannot infer a state from `{}`; pass `--from <state>` \
                     (run `--list-states` for the choices)",
                    shown_name(&file)
                );
                exit(2);
            }
        },
    };
    // An unreachable goal is a usage error too: the message names the
    // states that *are* reachable from the start.
    let route = match graph.plan(from, to) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("futil: {e}");
            exit(2);
        }
    };
    if !execute_route {
        println!(
            "plan: {} -> {} ({} step{})",
            graph.state(from).name,
            graph.state(to).name,
            route.steps.len(),
            if route.steps.len() == 1 { "" } else { "s" }
        );
        for (i, &idx) in route.steps.iter().enumerate() {
            let op = &graph.ops()[idx];
            println!(
                "  {}. {:<18}{} -> {}",
                i + 1,
                op.name(),
                graph.state(op.from()).name,
                graph.state(op.to()).name
            );
        }
        exit(0);
    }
    let src = read_input(&file);
    let env = calyx_plan::ExecEnv::default();
    let outcome = match calyx_plan::execute(&graph, &route, &src, &env, &build) {
        Ok(o) => o,
        Err(e) => {
            // Frontend parse errors inside the first step still render
            // caret diagnostics against the original source.
            match e.caret_diagnostic(shown_name(&file), &src) {
                Some(diagnostic) => eprintln!("futil: {diagnostic}"),
                None => eprintln!("futil: {e}"),
            }
            exit(1);
        }
    };
    // Step-status lines: `futil: step <op>: ran|cached (<time>)`. Tests
    // pin everything before the parenthesized timing.
    for step in &outcome.steps {
        eprintln!(
            "futil: step {}: {} ({:.1}ms)",
            step.op,
            step.status.label(),
            step.micros as f64 / 1000.0
        );
    }
    match &out_path {
        Some(path) => {
            if let Err(e) = calyx_service::write_atomic(path, outcome.output.as_bytes()) {
                eprintln!("futil: cannot write `{path}`: {e}");
                exit(1);
            }
        }
        None => {
            let stdout = std::io::stdout();
            let mut sink = stdout.lock();
            if sink
                .write_all(outcome.output.as_bytes())
                .and_then(|()| sink.flush())
                .is_err()
            {
                exit(1);
            }
        }
    }
    exit(0);
}

/// Parse a JSON-lines job manifest into requests, prefixing every error
/// with `path:line` so a typo'd key is pinpointed across files.
fn manifest_requests(path: &str, text: &str) -> Result<Vec<JobRequest>, String> {
    let mut reqs = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Request::from_json_line(line) {
            Ok(Request::Job(job)) => reqs.push(*job),
            Ok(Request::List(_)) => {
                return Err(format!(
                    "{path}:{}: `list` requests are only valid in serve mode",
                    idx + 1
                ));
            }
            Err(msg) => return Err(format!("{path}:{}: {msg}", idx + 1)),
        }
    }
    Ok(reqs)
}

/// The `futil serve` subcommand: a long-lived JSON-lines compilation
/// server on stdin/stdout (or a `--socket` unix socket), sharing one
/// warm parse cache across every request.
fn run_serve(frontends: &FrontendRegistry, backends: &BackendRegistry, args: Vec<String>) -> ! {
    let mut defaults = JobDefaults {
        inline_output: true,
        ..JobDefaults::default()
    };
    let mut jobs: Option<usize> = None;
    let mut socket: Option<String> = None;
    let mut max_connections: Option<usize> = None;
    let mut pipeline: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => match it.next().map(|s| s.parse()) {
                Some(Ok(n)) => jobs = Some(n),
                _ => usage_error(frontends, backends, "`--jobs` expects a number"),
            },
            "--socket" => match it.next() {
                Some(p) => socket = Some(p),
                None => usage_error(frontends, backends, "`--socket` expects a path"),
            },
            "--max-connections" => match it.next().map(|s| s.parse()) {
                Some(Ok(n)) => max_connections = Some(n),
                _ => usage_error(frontends, backends, "`--max-connections` expects a number"),
            },
            "--timeout" => match it.next().map(|s| s.parse()) {
                Some(Ok(ms)) => defaults.timeout_ms = Some(ms),
                _ => usage_error(frontends, backends, "`--timeout` expects milliseconds"),
            },
            "--out-dir" => match it.next() {
                Some(d) => defaults.out_dir = Some(d),
                None => usage_error(frontends, backends, "`--out-dir` expects a directory"),
            },
            "-f" => match it.next() {
                Some(f) => defaults.frontend = Some(f),
                None => usage_error(frontends, backends, "`-f` expects a frontend name"),
            },
            "--fopt" => match it.next() {
                Some(f) => match f.split_once('=') {
                    Some((k, v)) if !k.is_empty() => {
                        defaults.fopts.push((k.to_string(), v.to_string()));
                    }
                    _ => usage_error(
                        frontends,
                        backends,
                        &format!("`--fopt` argument `{f}`; expected `key=value`"),
                    ),
                },
                None => usage_error(frontends, backends, "`--fopt` expects `key=value`"),
            },
            "-p" => match it.next() {
                Some(p) => pipeline.push(p),
                None => usage_error(frontends, backends, "`-p` expects a pass or alias name"),
            },
            "-b" => match it.next() {
                Some(b) => defaults.backend = b,
                None => usage_error(frontends, backends, "`-b` expects a backend name"),
            },
            "--cycles" => match it.next().map(|s| s.parse()) {
                Some(Ok(n)) => defaults.cycles = n,
                _ => usage_error(frontends, backends, "`--cycles` expects a number"),
            },
            "--format" => match it.next().as_deref() {
                Some("text") => defaults.format = ReportFormat::Text,
                Some("json") => defaults.format = ReportFormat::Json,
                _ => usage_error(frontends, backends, "`--format` expects `text` or `json`"),
            },
            "-h" | "--help" => {
                print!("{}", usage(frontends, backends));
                exit(0);
            }
            other => usage_error(
                frontends,
                backends,
                &format!("unexpected argument `{other}` for `futil serve`"),
            ),
        }
    }
    if max_connections.is_some() && socket.is_none() {
        usage_error(
            frontends,
            backends,
            "`--max-connections` requires `--socket`",
        );
    }
    if !pipeline.is_empty() {
        defaults.pipeline = Some(pipeline);
    }
    let opts = ServeOpts {
        jobs: jobs.unwrap_or_else(WorkerPool::default_jobs),
        defaults,
    };
    let service = CompileService::new();
    let result = match socket {
        Some(path) => {
            calyx_service::serve_socket(&service, Path::new(&path), &opts, max_connections)
        }
        None => calyx_service::serve(&service, std::io::stdin().lock(), std::io::stdout(), &opts)
            .map(|_| ()),
    };
    match result {
        Ok(()) => exit(0),
        Err(e) => {
            eprintln!("futil: serve: {e}");
            exit(1);
        }
    }
}

fn main() {
    let frontends = FrontendRegistry::default();
    let backends = BackendRegistry::default();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // The `check` and `serve` subcommands take over the whole invocation.
    if args.first().map(String::as_str) == Some("check") {
        args.remove(0);
        run_check(&frontends, &backends, args);
    }
    if args.first().map(String::as_str) == Some("serve") {
        args.remove(0);
        run_serve(&frontends, &backends, args);
    }
    if args.first().map(String::as_str) == Some("build") {
        args.remove(0);
        run_build(&frontends, &backends, args, true);
    }
    if args.first().map(String::as_str) == Some("plan") {
        args.remove(0);
        run_build(&frontends, &backends, args, false);
    }
    let mut files: Vec<String> = Vec::new();
    let mut frontend_name: Option<String> = None;
    let mut fopts = FrontendOpts::default();
    let mut fopt_pairs: Vec<(String, String)> = Vec::new();
    let mut pipeline: Vec<String> = Vec::new();
    let mut backend_name = "calyx".to_string();
    let mut out_path: Option<String> = None;
    let mut opts = BackendOpts::default();
    let mut time = false;
    let mut stats = false;
    let mut check = false;
    let mut deny_warnings = false;
    let mut batch = false;
    let mut jobs: Option<usize> = None;
    let mut fail_fast = false;
    let mut timeout_ms: Option<u64> = None;
    let mut out_dir: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-f" => match it.next() {
                Some(f) => frontend_name = Some(f),
                None => usage_error(&frontends, &backends, "`-f` expects a frontend name"),
            },
            "--fopt" => match it.next() {
                Some(f) => {
                    if let Err(e) = fopts.push_flag(&f) {
                        eprintln!("futil: {e}");
                        exit(2);
                    }
                    // Batch job defaults carry the raw pair.
                    if let Some((k, v)) = f.split_once('=') {
                        fopt_pairs.push((k.to_string(), v.to_string()));
                    }
                }
                None => usage_error(&frontends, &backends, "`--fopt` expects `key=value`"),
            },
            "-p" => match it.next() {
                Some(p) => pipeline.push(p),
                None => usage_error(&frontends, &backends, "`-p` expects a pass or alias name"),
            },
            "-b" => match it.next() {
                Some(b) => backend_name = b,
                None => usage_error(&frontends, &backends, "`-b` expects a backend name"),
            },
            "-o" => match it.next() {
                Some(o) => out_path = Some(o),
                None => usage_error(&frontends, &backends, "`-o` expects a file path"),
            },
            "--cycles" => {
                opts.cycles = match it.next().map(|s| s.parse()) {
                    Some(Ok(n)) => n,
                    _ => usage_error(&frontends, &backends, "`--cycles` expects a number"),
                }
            }
            "--format" => {
                opts.format = match it.next().as_deref() {
                    Some("text") => ReportFormat::Text,
                    Some("json") => ReportFormat::Json,
                    _ => usage_error(&frontends, &backends, "`--format` expects `text` or `json`"),
                }
            }
            "--check" => check = true,
            "--deny" => match it.next().as_deref() {
                Some("warnings") => deny_warnings = true,
                _ => usage_error(&frontends, &backends, "`--deny` expects `warnings`"),
            },
            "--time" => time = true,
            "--stats" => stats = true,
            "--batch" => batch = true,
            "--jobs" => match it.next().map(|s| s.parse()) {
                Some(Ok(n)) => jobs = Some(n),
                _ => usage_error(&frontends, &backends, "`--jobs` expects a number"),
            },
            "--fail-fast" => fail_fast = true,
            "--timeout" => match it.next().map(|s| s.parse()) {
                Some(Ok(ms)) => timeout_ms = Some(ms),
                _ => usage_error(&frontends, &backends, "`--timeout` expects milliseconds"),
            },
            "--out-dir" => match it.next() {
                Some(d) => out_dir = Some(d),
                None => usage_error(&frontends, &backends, "`--out-dir` expects a directory"),
            },
            "--list-frontends" => {
                list_frontends(&frontends);
                exit(0);
            }
            "--list-passes" => {
                list_passes();
                exit(0);
            }
            "--list-backends" => {
                list_backends(&backends);
                exit(0);
            }
            "--list-lints" => {
                list_lints();
                exit(0);
            }
            // Help is not an error: print to stdout and exit 0.
            "-h" | "--help" => {
                print!("{}", usage(&frontends, &backends));
                exit(0);
            }
            // `-` is stdin, not a flag.
            "-" => files.push("-".to_string()),
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => usage_error(
                &frontends,
                &backends,
                &format!("unexpected argument `{other}`"),
            ),
        }
    }

    // `--batch`: every positional is a job (or a manifest of jobs); the
    // flags above become per-job defaults.
    if batch {
        if out_path.is_some() {
            usage_error(
                &frontends,
                &backends,
                "`-o` names one output; with `--batch` use `--out-dir` or a per-job `out`",
            );
        }
        if check {
            usage_error(
                &frontends,
                &backends,
                "`--check` is not supported with `--batch`; run `futil check` separately",
            );
        }
        if files.is_empty() {
            usage_error(
                &frontends,
                &backends,
                "`--batch` expects input files or `.jsonl` manifests",
            );
        }
        let mut reqs: Vec<JobRequest> = Vec::new();
        for f in &files {
            if f == "-" || f.ends_with(".jsonl") {
                // Manifest validation failures are usage errors: the
                // whole batch is rejected before any job runs.
                let text = read_input(f);
                match manifest_requests(shown_name(f), &text) {
                    Ok(r) => reqs.extend(r),
                    Err(msg) => {
                        eprintln!("futil: {msg}");
                        exit(2);
                    }
                }
            } else {
                reqs.push(JobRequest {
                    input: Some(f.clone()),
                    ..JobRequest::default()
                });
            }
        }
        let defaults = JobDefaults {
            frontend: frontend_name,
            fopts: fopt_pairs,
            pipeline: if pipeline.is_empty() {
                None
            } else {
                Some(pipeline)
            },
            backend: backend_name,
            cycles: opts.cycles,
            format: opts.format,
            timeout_ms,
            out_dir,
            inline_output: false,
        };
        let service = CompileService::new();
        let summary = service.run_batch(
            &reqs,
            jobs.unwrap_or_else(WorkerPool::default_jobs),
            fail_fast,
            &defaults,
        );
        // `--format` doubles as the summary format; `--time`/`--stats`
        // add the per-job stage table instead of interleaving stderr.
        match opts.format {
            ReportFormat::Json => println!("{}", summary.render_json()),
            ReportFormat::Text => println!("{}", summary.render_text(time || stats)),
        }
        exit(i32::from(!summary.all_ok()));
    }
    if jobs.is_some() || fail_fast || timeout_ms.is_some() || out_dir.is_some() {
        usage_error(
            &frontends,
            &backends,
            "`--jobs`, `--fail-fast`, `--timeout`, and `--out-dir` require `--batch` or `futil serve`",
        );
    }
    if files.len() > 1 {
        usage_error(&frontends, &backends, "multiple inputs require `--batch`");
    }
    let Some(file) = files.into_iter().next() else {
        usage_error(&frontends, &backends, "no input file");
    };
    // Unknown backends get the registry's message, which lists every valid
    // choice.
    let backend = match backends.get(&backend_name, &opts) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("futil: {e}");
            exit(2);
        }
    };
    let resolved_frontend = resolve_frontend_name(&frontends, frontend_name.as_deref(), &file);
    // Unknown frontends and bad `--fopt` keys/values are usage errors:
    // the registry message lists the valid frontends, and `from_opts`
    // names the frontend plus its valid keys.
    let frontend = match frontends.get(resolved_frontend, &fopts) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("futil: {e}");
            exit(2);
        }
    };
    // No explicit pipeline: run what the backend declares it needs
    // (`lower` for backends that accept any program, like `calyx`).
    if pipeline.is_empty() {
        let required = backend.required_pipeline();
        if required.is_empty() {
            pipeline.push("lower".to_string());
        } else {
            pipeline.extend(required.iter().map(|s| s.to_string()));
        }
    }
    let names: Vec<&str> = pipeline.iter().map(String::as_str).collect();
    // Unknown passes/aliases get the registry's message, which lists every
    // valid pass and alias.
    let mut pm = match PassManager::from_names(&names) {
        Ok(pm) => pm,
        Err(e) => {
            eprintln!("futil: {e}");
            exit(2);
        }
    };

    let src = read_input(&file);
    let mut ctx = parse_input(frontend.as_ref(), &file, &src);

    // `--check`: run every lint before compiling. Diagnostics go to
    // stderr (stdout belongs to the backend), and the run stops on
    // error-severity findings — or any finding under `--deny warnings`.
    if check {
        let sink = LintRegistry::default().check_all(&ctx, &mut AnalysisCache::new());
        let rendered = sink.render_text(shown_name(&file), &src);
        if !rendered.is_empty() {
            eprintln!("{rendered}");
        }
        if sink.errors() > 0 || (deny_warnings && !sink.is_empty()) {
            eprintln!("futil: `--check` found fatal diagnostics; not compiling");
            exit(1);
        }
    }

    let result = pm.run(&mut ctx);
    if time {
        // Timings include every pass that ran — also on failing pipelines.
        eprintln!("pass timings:");
        for t in pm.timings() {
            eprintln!("  {:<22}{:>10.3?}", t.name, t.duration);
        }
        eprintln!("  {:<22}{:>10.3?}", "total", pm.total_time());
    }
    if stats {
        // Analysis-cache activity per pass (also on failing pipelines).
        eprintln!("analysis cache stats:");
        eprintln!(
            "  {:<22}{:>8}{:>8}{:>12}",
            "pass", "hits", "misses", "recomputes"
        );
        for t in pm.timings() {
            eprintln!(
                "  {:<22}{:>8}{:>8}{:>12}",
                t.name, t.cache.hits, t.cache.misses, t.cache.recomputes
            );
        }
        let total = pm.total_cache_stats();
        eprintln!(
            "  {:<22}{:>8}{:>8}{:>12}",
            "total", total.hits, total.misses, total.recomputes
        );
    }
    if let Err(e) = result {
        eprintln!("futil: {e}");
        exit(1);
    }

    // The backend's precondition gate: an explicit pipeline that leaves
    // the program in the wrong shape fails here, cleanly, before any
    // output exists.
    if let Err(e) = backend.validate(&ctx) {
        eprintln!(
            "futil: backend `{}` precondition failed: {e}",
            backend.name()
        );
        let required = backend.required_pipeline();
        // Suggest the backend's pipeline only when it wasn't already run
        // — validate failures are not always pipeline-shaped.
        let already_ran = required.iter().all(|r| pipeline.iter().any(|p| p == r));
        if !required.is_empty() && !already_ran {
            eprintln!(
                "futil: note: `{}` requires the pipeline `-p {}`",
                backend.name(),
                required.join(" -p ")
            );
        }
        exit(1);
    }

    // Stream emission to the selected sink. With `-o`, stream to a
    // sibling temp file and rename into place on success, so a failed
    // emission never truncates or corrupts an existing output file.
    let emit_result = match &out_path {
        Some(path) => {
            let tmp = format!("{path}.tmp");
            let file = match std::fs::File::create(&tmp) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("futil: cannot write `{tmp}`: {e}");
                    exit(1);
                }
            };
            let mut sink = std::io::BufWriter::new(file);
            let result = backend
                .emit(&ctx, &mut sink)
                .and_then(|()| sink.flush().map_err(Into::into))
                .and_then(|()| std::fs::rename(&tmp, path).map_err(Into::into));
            if result.is_err() {
                let _ = std::fs::remove_file(&tmp);
            }
            result
        }
        None => {
            let stdout = std::io::stdout();
            let mut sink = stdout.lock();
            backend
                .emit(&ctx, &mut sink)
                .and_then(|()| sink.flush().map_err(Into::into))
        }
    };
    if let Err(e) = emit_result {
        eprintln!("futil: {e}");
        exit(1);
    }

    // Simulation backends measure their cycle loop; report it next to
    // the pass timings (same stderr channel, same flags).
    if time || stats {
        if let Some(t) = backend.throughput() {
            eprintln!(
                "simulation: {} cycles in {:.3?} ({} cycles/sec)",
                t.cycles,
                t.wall,
                human_rate(t.cycles_per_sec())
            );
        }
    }
}
