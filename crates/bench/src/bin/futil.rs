//! A `futil`-style command-line driver for the Calyx compiler, mirroring
//! the artifact's binary (paper appendix A): read a textual Calyx program,
//! run a pass pipeline built from `-p` flags, and print the result, emit
//! SystemVerilog, or simulate.
//!
//! ```text
//! futil <file.futil> [flags]
//!   -p <pass-or-alias>  append a pass or pipeline alias (repeatable;
//!                       default: lower). Aliases: none, lower,
//!                       lower-static, opt, all.
//!   -b calyx            print Calyx (default)
//!   -b verilog          emit SystemVerilog
//!   -b sim              simulate and report cycles + final state
//!   --cycles N          simulation budget (default 1_000_000)
//!   --time              report per-pass wall-clock timings on stderr
//!   --stats             report per-pass analysis-cache statistics
//!                       (hits/misses/recomputes) on stderr
//!   --list-passes       list registered passes and aliases, then exit
//!   -h, --help          print usage and exit
//! ```
//!
//! Example:
//!
//! ```sh
//! echo 'component main() -> () {
//!   cells { r = std_reg(8); }
//!   wires { group g { r.in = 8'"'"'d7; r.write_en = 1'"'"'d1; g[done] = r.done; } }
//!   control { g; }
//! }' > /tmp/t.futil
//! cargo run -p calyx-bench --bin futil -- /tmp/t.futil -p lower -b sim
//! ```

use calyx_backend::verilog;
use calyx_core::ir::{parse_context, Printer};
use calyx_core::passes::{PassManager, PassRegistry};
use calyx_sim::rtl::Simulator;
use std::process::exit;

const USAGE: &str = "usage: futil <file.futil> [flags]
  -p <pass-or-alias>  append a pass or pipeline alias to the pipeline
                      (repeatable; default: lower). Run --list-passes
                      for the full registry.
  -b calyx|verilog|sim
                      backend: print Calyx (default), emit SystemVerilog,
                      or simulate
  --cycles N          simulation budget (default 1_000_000)
  --time              report per-pass wall-clock timings on stderr
  --stats             report per-pass analysis-cache statistics
                      (hits/misses/recomputes) on stderr
  --list-passes       list registered passes and aliases, then exit
  -h, --help          print this message and exit
";

const BACKENDS: &[&str] = &["calyx", "verilog", "sim"];

/// A *user error* in the invocation (not in the input program): print the
/// message and the usage text to stderr and exit 2.
fn usage_error(msg: &str) -> ! {
    eprintln!("futil: {msg}");
    eprint!("{USAGE}");
    exit(2);
}

fn list_passes() {
    let registry = PassRegistry::default();
    println!("passes:");
    for pass in registry.passes() {
        println!("  {:<22}{}", pass.name, pass.description);
    }
    println!("\naliases:");
    for (alias, expansion) in registry.aliases() {
        println!("  {:<22}{}", alias, expansion.join(" -> "));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut pipeline: Vec<String> = Vec::new();
    let mut backend = "calyx".to_string();
    let mut cycles: u64 = 1_000_000;
    let mut time = false;
    let mut stats = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-p" => match it.next() {
                Some(p) => pipeline.push(p),
                None => usage_error("`-p` expects a pass or alias name"),
            },
            "-b" => match it.next() {
                Some(b) => backend = b,
                None => usage_error("`-b` expects a backend name"),
            },
            "--cycles" => {
                cycles = match it.next().map(|s| s.parse()) {
                    Some(Ok(n)) => n,
                    _ => usage_error("`--cycles` expects a number"),
                }
            }
            "--time" => time = true,
            "--stats" => stats = true,
            "--list-passes" => {
                list_passes();
                exit(0);
            }
            // Help is not an error: print to stdout and exit 0.
            "-h" | "--help" => {
                print!("{USAGE}");
                exit(0);
            }
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            other => usage_error(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(file) = file else {
        usage_error("no input file");
    };
    // Unknown backends get a distinct message listing the valid choices.
    if !BACKENDS.contains(&backend.as_str()) {
        eprintln!(
            "futil: unknown backend `{backend}`; valid backends: {}",
            BACKENDS.join(", ")
        );
        exit(2);
    }
    if pipeline.is_empty() {
        pipeline.push("lower".to_string());
    }
    let names: Vec<&str> = pipeline.iter().map(String::as_str).collect();
    // Unknown passes/aliases get the registry's message, which lists every
    // valid pass and alias.
    let mut pm = match PassManager::from_names(&names) {
        Ok(pm) => pm,
        Err(e) => {
            eprintln!("futil: {e}");
            exit(2);
        }
    };

    let src = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("futil: cannot read `{file}`: {e}");
            exit(1);
        }
    };
    let mut ctx = match parse_context(&src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("futil: {e}");
            exit(1);
        }
    };

    let result = pm.run(&mut ctx);
    if time {
        // Timings include every pass that ran — also on failing pipelines.
        eprintln!("pass timings:");
        for t in pm.timings() {
            eprintln!("  {:<22}{:>10.3?}", t.name, t.duration);
        }
        eprintln!("  {:<22}{:>10.3?}", "total", pm.total_time());
    }
    if stats {
        // Analysis-cache activity per pass (also on failing pipelines).
        eprintln!("analysis cache stats:");
        eprintln!(
            "  {:<22}{:>8}{:>8}{:>12}",
            "pass", "hits", "misses", "recomputes"
        );
        for t in pm.timings() {
            eprintln!(
                "  {:<22}{:>8}{:>8}{:>12}",
                t.name, t.cache.hits, t.cache.misses, t.cache.recomputes
            );
        }
        let total = pm.total_cache_stats();
        eprintln!(
            "  {:<22}{:>8}{:>8}{:>12}",
            "total", total.hits, total.misses, total.recomputes
        );
    }
    if let Err(e) = result {
        eprintln!("futil: {e}");
        exit(1);
    }

    match backend.as_str() {
        "calyx" => print!("{}", Printer::print_context(&ctx)),
        "verilog" => match verilog::emit(&ctx) {
            Ok(sv) => print!("{sv}"),
            Err(e) => {
                eprintln!("futil: {e} (run with `-p lower` first?)");
                exit(1);
            }
        },
        "sim" => {
            let mut sim = match Simulator::new(&ctx, ctx.entrypoint.as_str()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("futil: {e} (simulation needs `-p lower`/`opt`)");
                    exit(1);
                }
            };
            match sim.run(cycles) {
                Ok(stats) => {
                    println!("done in {} cycles", stats.cycles);
                    // Report external memories and registers of the entry
                    // component, best-effort.
                    let main = ctx.entry().expect("entrypoint checked at parse");
                    for cell in main.cells.iter() {
                        let name = cell.name.as_str();
                        if let Ok(mem) = sim.memory(&[name]) {
                            println!("{name} = {mem:?}");
                        } else if let Ok(v) = sim.register_value(&[name]) {
                            println!("{name} = {v}");
                        }
                    }
                }
                Err(e) => {
                    eprintln!("futil: simulation failed: {e}");
                    exit(1);
                }
            }
        }
        _ => unreachable!("backend validated above"),
    }
}
