//! A `futil`-style command-line driver for the Calyx compiler, mirroring
//! the artifact's binary (paper appendix A): read a textual Calyx program,
//! run a chosen pass pipeline, and print the result, emit SystemVerilog,
//! or simulate.
//!
//! ```text
//! futil <file.futil> [flags]
//!   -p lower            latency-insensitive lowering (default)
//!   -p lower-static     latency inference + static compilation + lowering
//!   -p opt              full optimizing pipeline (sharing + static)
//!   -p none             parse + validate only
//!   -b calyx            print Calyx (default)
//!   -b verilog          emit SystemVerilog
//!   -b sim              simulate and report cycles + final state
//!   --cycles N          simulation budget (default 1_000_000)
//! ```
//!
//! Example:
//!
//! ```sh
//! echo 'component main() -> () {
//!   cells { r = std_reg(8); }
//!   wires { group g { r.in = 8'"'"'d7; r.write_en = 1'"'"'d1; g[done] = r.done; } }
//!   control { g; }
//! }' > /tmp/t.futil
//! cargo run -p calyx-bench --bin futil -- /tmp/t.futil -p lower -b sim
//! ```

use calyx_backend::verilog;
use calyx_core::ir::{parse_context, Printer};
use calyx_core::passes;
use calyx_sim::rtl::Simulator;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: futil <file.futil> [-p none|lower|lower-static|opt] \
         [-b calyx|verilog|sim] [--cycles N]"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut pipeline = "lower".to_string();
    let mut backend = "calyx".to_string();
    let mut cycles: u64 = 1_000_000;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-p" => pipeline = it.next().unwrap_or_else(|| usage()),
            "-b" => backend = it.next().unwrap_or_else(|| usage()),
            "--cycles" => {
                cycles = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "-h" | "--help" => usage(),
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            _ => usage(),
        }
    }
    let Some(file) = file else { usage() };

    let src = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("futil: cannot read `{file}`: {e}");
            exit(1);
        }
    };
    let mut ctx = match parse_context(&src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("futil: {e}");
            exit(1);
        }
    };

    let mut pm = match pipeline.as_str() {
        "none" => {
            let mut pm = passes::PassManager::new();
            pm.register(passes::WellFormed);
            pm
        }
        "lower" => passes::lower_pipeline(),
        "lower-static" => passes::lower_pipeline_static(),
        "opt" => passes::optimized_pipeline(true, true, true),
        other => {
            eprintln!("futil: unknown pipeline `{other}`");
            exit(2);
        }
    };
    if let Err(e) = pm.run(&mut ctx) {
        eprintln!("futil: {e}");
        exit(1);
    }

    match backend.as_str() {
        "calyx" => print!("{}", Printer::print_context(&ctx)),
        "verilog" => match verilog::emit(&ctx) {
            Ok(sv) => print!("{sv}"),
            Err(e) => {
                eprintln!("futil: {e} (run with `-p lower` first?)");
                exit(1);
            }
        },
        "sim" => {
            let mut sim = match Simulator::new(&ctx, ctx.entrypoint.as_str()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("futil: {e} (simulation needs `-p lower`/`opt`)");
                    exit(1);
                }
            };
            match sim.run(cycles) {
                Ok(stats) => {
                    println!("done in {} cycles", stats.cycles);
                    // Report external memories and registers of the entry
                    // component, best-effort.
                    let main = ctx.entry().expect("entrypoint checked at parse");
                    for cell in main.cells.iter() {
                        let name = cell.name.as_str();
                        if let Ok(mem) = sim.memory(&[name]) {
                            println!("{name} = {mem:?}");
                        } else if let Ok(v) = sim.register_value(&[name]) {
                            println!("{name} = {v}");
                        }
                    }
                }
                Err(e) => {
                    eprintln!("futil: simulation failed: {e}");
                    exit(1);
                }
            }
        }
        other => {
            eprintln!("futil: unknown backend `{other}`");
            exit(2);
        }
    }
}
