//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [fig7|fig8|fig9|fig9a|fig9b|fig9c|stats|all] [--quick]
//! ```
//!
//! `--quick` shrinks problem sizes for smoke runs; the default sizes match
//! the paper (systolic 2-8, PolyBench n = 8, unroll 2).

use calyx_bench::{fig7, fig8, fig9, geomean, stats};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let run = |name: &str| what == "all" || what == name;
    let mut failed = false;

    if run("fig7") {
        failed |= print_fig7(quick).is_err();
    }
    if run("fig8") {
        failed |= print_fig8(quick).is_err();
    }
    if what == "all" || what.starts_with("fig9") {
        failed |= print_fig9(quick, &what).is_err();
    }
    if run("stats") {
        failed |= print_stats(quick).is_err();
    }
    if failed {
        std::process::exit(1);
    }
}

fn print_fig7(quick: bool) -> Result<(), ()> {
    let sizes: &[usize] = if quick { &[2, 4] } else { &[2, 4, 6, 8] };
    println!("## Figure 7: systolic arrays vs HLS (matrix multiply)\n");
    println!("| size | Calyx static (cyc) | Calyx dynamic (cyc) | HLS (cyc) | Calyx static (LUT) | Calyx dynamic (LUT) | HLS (LUT) |");
    println!("|------|-------------------:|--------------------:|----------:|-------------------:|--------------------:|----------:|");
    let rows = fig7::compute(sizes).map_err(|e| eprintln!("fig7: {e}"))?;
    for r in &rows {
        println!(
            "| {}x{} | {} | {} | {} | {} | {} | {} |",
            r.n,
            r.n,
            r.calyx_static_cycles,
            r.calyx_dynamic_cycles,
            r.hls_cycles,
            r.calyx_static_luts,
            r.calyx_dynamic_luts,
            r.hls_luts
        );
    }
    let speedup = geomean(
        rows.iter()
            .map(|r| r.hls_cycles as f64 / r.calyx_static_cycles as f64),
    );
    let luts = geomean(
        rows.iter()
            .map(|r| r.calyx_static_luts as f64 / r.hls_luts as f64),
    );
    let sens = geomean(
        rows.iter()
            .map(|r| r.calyx_dynamic_cycles as f64 / r.calyx_static_cycles as f64),
    );
    let sens_area = geomean(
        rows.iter()
            .map(|r| r.calyx_dynamic_luts as f64 / r.calyx_static_luts as f64),
    );
    println!("\n- geomean speedup over HLS: {speedup:.2}x (paper: 4.6x; 10.78x at 8x8)");
    println!("- geomean LUT factor vs HLS: {luts:.2}x (paper: 1.11x; 1.3x at 8x8)");
    println!("- Sensitive pass: {sens:.2}x faster, {sens_area:.2}x LUTs (paper: 1.9x faster, 1.1x smaller)\n");
    Ok(())
}

fn print_fig8(quick: bool) -> Result<(), ()> {
    let (n, unroll) = if quick { (4, 2) } else { (8, 2) };
    println!("## Figure 8: PolyBench, Dahlia->Calyx vs HLS (n = {n})\n");
    println!("| kernel | unroll | Calyx (cyc) | HLS (cyc) | slowdown | Calyx (LUT) | HLS (LUT) | LUT factor |");
    println!("|--------|-------:|------------:|----------:|---------:|------------:|----------:|-----------:|");
    let rows = fig8::compute(n, unroll).map_err(|e| eprintln!("fig8: {e}"))?;
    for r in &rows {
        println!(
            "| {} | {} | {} | {} | {:.2}x | {} | {} | {:.2}x |",
            r.abbrev,
            r.unroll,
            r.calyx_cycles,
            r.hls_cycles,
            r.slowdown(),
            r.calyx_luts,
            r.hls_luts,
            r.lut_factor()
        );
    }
    let plain: Vec<_> = rows.iter().filter(|r| r.unroll == 1).collect();
    let unrolled: Vec<_> = rows.iter().filter(|r| r.unroll > 1).collect();
    println!(
        "\n- geomean slowdown: {:.2}x (paper: 3.1x); LUT factor {:.2}x (paper: 1.2x)",
        geomean(plain.iter().map(|r| r.slowdown())),
        geomean(plain.iter().map(|r| r.lut_factor()))
    );
    if !unrolled.is_empty() {
        println!(
            "- unrolled geomean slowdown: {:.2}x (paper: 2.3x); LUT factor {:.2}x (paper: 2.2x)\n",
            geomean(unrolled.iter().map(|r| r.slowdown())),
            geomean(unrolled.iter().map(|r| r.lut_factor()))
        );
    }
    Ok(())
}

fn print_fig9(quick: bool, what: &str) -> Result<(), ()> {
    let n = if quick { 4 } else { 8 };
    let rows = fig9::compute(n).map_err(|e| eprintln!("fig9: {e}"))?;
    if what == "all" || what == "fig9" || what == "fig9a" {
        println!("## Figure 9a: LUT factor from sharing passes (n = {n})\n");
        println!("| kernel | resource sharing | register sharing | both |");
        println!("|--------|-----------------:|-----------------:|-----:|");
        for r in &rows {
            println!(
                "| {} | {:.3}x | {:.3}x | {:.3}x |",
                r.abbrev,
                r.lut_factor_rs(),
                r.lut_factor_mr(),
                r.lut_factor_both()
            );
        }
        println!(
            "\n- geomean: RS {:.3}x, MR {:.3}x (paper: +3% and +11% LUTs)\n",
            geomean(rows.iter().map(|r| r.lut_factor_rs())),
            geomean(rows.iter().map(|r| r.lut_factor_mr()))
        );
    }
    if what == "all" || what == "fig9" || what == "fig9b" {
        println!("## Figure 9b: register decrease from register sharing (n = {n})\n");
        println!("| kernel | registers before | after | decrease |");
        println!("|--------|-----------------:|------:|---------:|");
        for r in &rows {
            println!(
                "| {} | {} | {} | {:.2}x |",
                r.abbrev,
                r.baseline.register_cells,
                r.register_sharing.register_cells,
                r.register_decrease()
            );
        }
        println!(
            "\n- geomean decrease: {:.2}x (paper: 12% average reduction)\n",
            geomean(rows.iter().map(|r| r.register_decrease()))
        );
    }
    if what == "all" || what == "fig9" || what == "fig9c" {
        println!("## Figure 9c: speedup from latency-sensitive compilation (n = {n})\n");
        println!("| kernel | dynamic (cyc) | static (cyc) | speedup |");
        println!("|--------|--------------:|-------------:|--------:|");
        for r in &rows {
            println!(
                "| {} | {} | {} | {:.2}x |",
                r.abbrev,
                r.dynamic_cycles,
                r.static_cycles,
                r.static_speedup()
            );
        }
        println!(
            "\n- geomean speedup: {:.2}x (paper: 1.43x)\n",
            geomean(rows.iter().map(|r| r.static_speedup()))
        );
    }
    Ok(())
}

fn print_stats(quick: bool) -> Result<(), ()> {
    println!("## Section 7.4: compilation statistics\n");
    let gemver =
        stats::gemver_stats(if quick { 4 } else { 8 }).map_err(|e| eprintln!("stats: {e}"))?;
    let systolic =
        stats::systolic_stats(if quick { 4 } else { 8 }).map_err(|e| eprintln!("stats: {e}"))?;
    println!("| design | cells | groups | control stmts | compile time | SV LOC |");
    println!("|--------|------:|-------:|--------------:|-------------:|-------:|");
    for s in [&gemver, &systolic] {
        println!(
            "| {} | {} | {} | {} | {:.3}s | {} |",
            s.name,
            s.cells,
            s.groups,
            s.control_statements,
            s.compile_time.as_secs_f64(),
            s.verilog_loc
        );
    }
    println!("\n(paper: gemver compiles in 0.06s vs 26.1s for Vivado HLS; the 8x8");
    println!("systolic array has 241 cells / 224 groups / 1744 control statements");
    println!("and emits 8906 LOC of SystemVerilog in 0.7s)\n");
    Ok(())
}
