//! §7.4's compilation statistics.
//!
//! The paper reports: the largest PolyBench design (gemver) compiles in
//! 0.06 s (vs. 26.1 s for Vivado HLS); the largest overall design, the
//! 8×8 systolic array, contains 241 cells, 224 groups, and 1,744 control
//! statements, and compiles to 8,906 lines of SystemVerilog in 0.7 s.

use calyx_backend::{verilog, Backend, BackendOpts, VerilogBackend};
use calyx_core::errors::CalyxResult;
use calyx_core::ir::{Context, Control};
use calyx_core::passes;
use calyx_polybench::{compile_kernel, kernel};
use calyx_systolic::{generate, SystolicConfig};
use std::time::{Duration, Instant};

/// Compilation statistics for one design.
#[derive(Debug, Clone)]
pub struct CompileStats {
    /// Design name.
    pub name: String,
    /// Cells in the entry component before lowering.
    pub cells: usize,
    /// Groups before lowering.
    pub groups: usize,
    /// Control statements before lowering (the §7.4 metric).
    pub control_statements: usize,
    /// Wall-clock time for the full lowering pipeline.
    pub compile_time: Duration,
    /// Non-empty lines of emitted SystemVerilog.
    pub verilog_loc: usize,
}

fn measure(name: &str, mut ctx: Context) -> CalyxResult<CompileStats> {
    let main = ctx.entry()?;
    let cells = main.cells.len();
    let groups = main.groups.len();
    let control_statements = Control::statement_count(&main.control);
    let start = Instant::now();
    passes::lower_pipeline_static().run(&mut ctx)?;
    // Stream emission (the timed path the paper measures) into one buffer.
    let mut sv = Vec::new();
    VerilogBackend::from_opts(&BackendOpts::default()).emit(&ctx, &mut sv)?;
    let compile_time = start.elapsed();
    let sv = String::from_utf8(sv).expect("emitter writes UTF-8");
    Ok(CompileStats {
        name: name.to_string(),
        cells,
        groups,
        control_statements,
        compile_time,
        verilog_loc: verilog::line_count(&sv),
    })
}

/// Statistics for the largest PolyBench design (gemver).
///
/// # Errors
///
/// Propagates compilation failures.
pub fn gemver_stats(n: u64) -> CalyxResult<CompileStats> {
    let def = kernel("gemver").expect("gemver is registered");
    let (_, ctx) = compile_kernel(def, n, 1)?;
    measure("gemver", ctx)
}

/// Statistics for an n×n systolic array (the paper uses 8×8).
///
/// # Errors
///
/// Propagates compilation failures.
pub fn systolic_stats(n: usize) -> CalyxResult<CompileStats> {
    let ctx = generate(&SystolicConfig::square(n));
    measure(&format!("systolic {n}x{n}"), ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compilation_is_fast_like_the_paper() {
        // §7.4: Calyx compiles gemver in well under a second.
        let stats = gemver_stats(8).unwrap();
        assert!(stats.compile_time < Duration::from_secs(5), "{stats:?}");
        assert!(stats.verilog_loc > 100, "{stats:?}");
    }

    #[test]
    fn systolic_8x8_statistics_are_in_the_papers_regime() {
        let stats = systolic_stats(8).unwrap();
        // Paper: 241 cells, 224 groups, 1744 control statements. Our
        // generator differs in detail (index counters, drain phase) but
        // must land in the same order of magnitude.
        assert!(stats.cells > 100 && stats.cells < 800, "{stats:?}");
        assert!(stats.groups > 100 && stats.groups < 800, "{stats:?}");
        assert!(
            stats.control_statements > 500 && stats.control_statements < 5000,
            "{stats:?}"
        );
        assert!(stats.verilog_loc > 2000, "{stats:?}");
    }
}
