//! Harnesses regenerating every table and figure in the paper's evaluation
//! (§7). Each `figN` module computes the corresponding figure's data as
//! plain structs; the `figures` binary renders them as tables and
//! `EXPERIMENTS.md` records a captured run against the paper's numbers.

pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod stats;

/// Geometric mean of a sequence of ratios.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0]) - 2.0).abs() < 1e-9);
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }
}
