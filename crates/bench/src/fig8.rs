//! Figure 8: Dahlia-generated Calyx designs vs. the HLS baseline on the
//! PolyBench suite.
//!
//! - **8a**: cycle slowdown of Calyx designs relative to HLS (paper:
//!   3.1× geomean; 2.3× for the unrolled variants).
//! - **8b**: LUT increase relative to HLS (paper: 1.2×; 2.2× unrolled).
//!
//! Every Calyx design is simulated *and verified against the reference
//! semantics* before its cycles are reported; the HLS number models the
//! same lowered program.

use calyx_backend::area;
use calyx_core::errors::CalyxResult;
use calyx_polybench::{simulate, KernelDef, PipelineConfig, KERNELS};

/// One bar of Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Kernel abbreviation (the paper's x-axis label).
    pub abbrev: &'static str,
    /// Unroll factor (1 = the plain variant).
    pub unroll: u64,
    /// Verified Calyx cycles.
    pub calyx_cycles: u64,
    /// HLS-model cycles.
    pub hls_cycles: u64,
    /// Calyx LUTs.
    pub calyx_luts: u64,
    /// HLS LUTs.
    pub hls_luts: u64,
}

impl Fig8Row {
    /// Figure 8a's y-value.
    pub fn slowdown(&self) -> f64 {
        self.calyx_cycles as f64 / self.hls_cycles as f64
    }

    /// Figure 8b's y-value.
    pub fn lut_factor(&self) -> f64 {
        self.calyx_luts as f64 / self.hls_luts as f64
    }
}

/// Run one kernel variant through both toolchains.
///
/// # Errors
///
/// Propagates compilation/verification failures.
pub fn run_kernel(def: &KernelDef, n: u64, unroll: u64) -> CalyxResult<Fig8Row> {
    let run = simulate(def, n, unroll, PipelineConfig::all())?;
    let calyx_area = area::estimate(&run.lowered, "main")?;
    let hls = calyx_hls::estimate(&run.ast)?;
    Ok(Fig8Row {
        abbrev: def.abbrev,
        unroll,
        calyx_cycles: run.cycles,
        hls_cycles: hls.cycles,
        calyx_luts: calyx_area.luts,
        hls_luts: hls.area.luts,
    })
}

/// Compute Figure 8 over the whole suite (plain + unrolled variants).
///
/// # Errors
///
/// Propagates the first failing kernel.
pub fn compute(n: u64, unroll: u64) -> CalyxResult<Vec<Fig8Row>> {
    let mut rows = Vec::new();
    for def in KERNELS {
        rows.push(run_kernel(def, n, 1)?);
        if def.unrollable && unroll > 1 {
            rows.push(run_kernel(def, n, unroll)?);
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geomean;
    use calyx_polybench::kernel;

    #[test]
    fn gemm_is_slower_than_hls_but_same_regime() {
        // The paper's qualitative claim: within a few factors of a heavily
        // optimized commercial toolchain.
        let row = run_kernel(kernel("gemm").unwrap(), 6, 1).unwrap();
        let slowdown = row.slowdown();
        assert!(
            slowdown > 1.0,
            "HLS pipelines; Calyx pays FSM overhead: {row:?}"
        );
        assert!(slowdown < 12.0, "within an order of magnitude: {row:?}");
    }

    #[test]
    fn unrolling_closes_the_gap() {
        let plain = run_kernel(kernel("gemm").unwrap(), 4, 1).unwrap();
        let unrolled = run_kernel(kernel("gemm").unwrap(), 4, 2).unwrap();
        assert!(
            unrolled.calyx_cycles < plain.calyx_cycles,
            "unrolled Calyx runs faster: {unrolled:?} vs {plain:?}"
        );
    }

    #[test]
    fn suite_subset_has_paper_shape() {
        let rows: Vec<Fig8Row> = ["gemm", "atax", "mvt", "trisolv"]
            .iter()
            .map(|k| run_kernel(kernel(k).unwrap(), 4, 1).unwrap())
            .collect();
        let slow = geomean(rows.iter().map(Fig8Row::slowdown));
        assert!(
            slow > 1.0 && slow < 15.0,
            "geomean slowdown {slow}: {rows:?}"
        );
    }
}
