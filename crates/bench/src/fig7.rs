//! Figure 7: systolic arrays vs. Vivado HLS on matrix multiply.
//!
//! - **7a**: absolute cycle counts for Calyx latency-sensitive, Calyx
//!   latency-insensitive, and HLS, for sizes 2×2 … 8×8.
//! - **7b**: absolute LUT usage for the same designs.
//!
//! The HLS baseline follows the paper's setup — "a straightforward
//! matrix-multiply kernel in Vivado HLS that fully unrolls the outer two
//! loops": the *schedule* is modeled from the plain loop nest (memory
//! ports, not compute, are the bottleneck when arrays are unpartitioned),
//! while the *area* accounts for the `rows×cols` MAC units the unroll
//! pragma allocates.

use calyx_backend::area::{self, primitive_area, Area};
use calyx_core::errors::CalyxResult;
use calyx_core::passes;
use calyx_sim::rtl::Simulator;
use calyx_systolic::{generate, SystolicConfig};

/// One row of Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Array dimension (n×n by n×n).
    pub n: usize,
    /// Calyx with latency-sensitive compilation: cycles.
    pub calyx_static_cycles: u64,
    /// Calyx latency-insensitive: cycles.
    pub calyx_dynamic_cycles: u64,
    /// HLS baseline cycles.
    pub hls_cycles: u64,
    /// Calyx (latency-sensitive) LUTs.
    pub calyx_static_luts: u64,
    /// Calyx (latency-insensitive) LUTs.
    pub calyx_dynamic_luts: u64,
    /// HLS baseline LUTs.
    pub hls_luts: u64,
}

/// Simulate one systolic configuration; returns `(cycles, area)`.
///
/// # Errors
///
/// Propagates compilation and simulation failures.
pub fn run_systolic(n: usize, static_timing: bool) -> CalyxResult<(u64, Area)> {
    let cfg = SystolicConfig::square(n);
    let mut ctx = generate(&cfg);
    if static_timing {
        passes::lower_pipeline_static().run(&mut ctx)?;
    } else {
        passes::lower_pipeline().run(&mut ctx)?;
    }
    let mut sim = Simulator::new(&ctx, "main")
        .map_err(|e| calyx_core::errors::Error::malformed(e.to_string()))?;
    // Deterministic operands.
    for r in 0..n {
        let row: Vec<u64> = (0..n).map(|k| ((r * n + k) % 7 + 1) as u64).collect();
        sim.set_memory(&[&format!("l{r}")], &row)
            .map_err(|e| calyx_core::errors::Error::malformed(e.to_string()))?;
    }
    for c in 0..n {
        let col: Vec<u64> = (0..n).map(|k| ((k * n + c) % 5 + 1) as u64).collect();
        sim.set_memory(&[&format!("t{c}")], &col)
            .map_err(|e| calyx_core::errors::Error::malformed(e.to_string()))?;
    }
    let stats = sim
        .run(10_000_000)
        .map_err(|e| calyx_core::errors::Error::malformed(e.to_string()))?;
    let a = area::estimate(&ctx, "main")?;
    Ok((stats.cycles, a))
}

/// The HLS matmul baseline (see module docs).
///
/// # Errors
///
/// Propagates model failures (none expected for this generated source).
pub fn run_hls_matmul(n: usize) -> CalyxResult<calyx_hls::HlsReport> {
    let src = format!(
        "decl a: ubit<32>[{n}][{n}];
         decl b: ubit<32>[{n}][{n}];
         decl c: ubit<32>[{n}][{n}];
         for (let i: ubit<8> = 0..{n}) {{
           for (let j: ubit<8> = 0..{n}) {{
             for (let k: ubit<8> = 0..{n}) {{
               let t: ubit<32> = a[i][k] * b[k][j];
               ---
               c[i][j] := c[i][j] + t;
             }}
           }}
         }}"
    );
    let mut report = calyx_hls::estimate_source(&src)?;
    // The unroll pragmas on the outer loops replicate the MAC datapath
    // n*n times even though memory ports bound the schedule.
    let macs = (n * n) as u64 - 1;
    for _ in 0..macs {
        report.area = report.area + primitive_area("std_mult_pipe", &[32]);
        report.area = report.area + primitive_area("std_add", &[32]);
    }
    Ok(report)
}

/// Compute Figure 7 for the given sizes (the paper uses 2, 4, 6, 8).
///
/// # Errors
///
/// Propagates the first failing configuration.
pub fn compute(sizes: &[usize]) -> CalyxResult<Vec<Fig7Row>> {
    sizes
        .iter()
        .map(|&n| {
            let (static_cycles, static_area) = run_systolic(n, true)?;
            let (dynamic_cycles, dynamic_area) = run_systolic(n, false)?;
            let hls = run_hls_matmul(n)?;
            Ok(Fig7Row {
                n,
                calyx_static_cycles: static_cycles,
                calyx_dynamic_cycles: dynamic_cycles,
                hls_cycles: hls.cycles,
                calyx_static_luts: static_area.luts,
                calyx_dynamic_luts: dynamic_area.luts,
                hls_luts: hls.area.luts,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geomean;

    #[test]
    fn shape_matches_the_paper() {
        // Small sizes keep the test fast; the orderings are what matter.
        let rows = compute(&[2, 4]).unwrap();
        for row in &rows {
            // §7.1: Sensitive makes designs faster.
            assert!(
                row.calyx_static_cycles < row.calyx_dynamic_cycles,
                "{row:?}"
            );
            // Headline: systolic beats HLS on cycles.
            assert!(row.calyx_static_cycles < row.hls_cycles, "{row:?}");
        }
        // Speedup grows with size (crossover direction).
        let speedup = |r: &Fig7Row| r.hls_cycles as f64 / r.calyx_static_cycles as f64;
        assert!(speedup(&rows[1]) > speedup(&rows[0]), "{rows:?}");
        // LUTs are within a small factor of HLS (paper: 1.11x mean).
        let lut_factor = geomean(
            rows.iter()
                .map(|r| r.calyx_static_luts as f64 / r.hls_luts as f64),
        );
        assert!(lut_factor < 4.0 && lut_factor > 0.25, "factor {lut_factor}");
    }
}
